"""Wall-clock self-profiler: where does *simulation* time actually go?

The paper's pitch — modeling all SSD resources is affordable — lives or
dies on simulator speed, and the next order-of-magnitude speedup
(ROADMAP item 2) needs to know **which models burn the wall clock**,
not just how long a whole run took.  Tracing (:mod:`repro.obs.tracer`)
answers that in *simulated* time; this module answers it in *host*
time.

When :func:`enable_profiling` is armed, every new
:class:`~repro.sim.Simulator` carries a :class:`WallProfiler` and its
``run``/``run_process`` entry points delegate to the profiled loop
clones below, which wrap each event dispatch in ``perf_counter`` reads
and attribute the elapsed wall time to the **layer** that consumed it
(``sim``/``host``/``hostos``/``nvme``/``icl``/``ftl``/``gc``/``fil``/
``flash``/…).  Attribution keys off the dispatched callback: a plain
callback is charged to the module its code lives in; resuming a
:class:`~repro.sim.process.Process` is charged to the module that
*defines the generator* (the model, not the kernel plumbing).  Loop
overhead that no callback accounts for — heap pops, tombstone skips,
the observe-only hooks — is booked under ``sim``, so every measured
nanosecond is attributed to some layer.

The profiled loops replicate the engine's inlined hot loops statement
for statement (tombstones, orphan recording, telemetry/sanitizer hooks,
deadline semantics), so a profiled run is **bit-identical** to a plain
one: same ``events_processed``, same ``sim.now``, same results — only
wall clocks differ (``tests/test_obs_profiler.py`` pins this against
the perf scenarios).  Off — the default — :func:`profiler_for` returns
``None`` and the engine pays one ``is None`` test per ``run`` call,
nothing per event.

Exports: :func:`attribution` (merged per-layer totals),
:func:`attribution_markdown` (the table the next perf PR reads) and
:func:`write_profile_trace` (Chrome ``trace_event`` JSON of the slowest
dispatch slices, wall-time axis).  CLI surface: ``--profile`` on
``python -m repro.experiments``, ``--self-profile`` on
``python -m benchmarks.perf`` (``--profile`` there already selects the
scenario size) and ``--profile`` on ``python -m repro.fleet run``
(per-job layer totals land in the run journal).

This module is one of simlint's designated wall-clock modules (SIM110):
``perf_counter`` reads are its whole point and never enter simulated
results.
"""

from __future__ import annotations

import heapq
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

#: (path fragment, layer) — first match wins, checked on "/"-normalized
#: code-object filenames; the order goes from most to least specific.
_CATEGORY_RULES: Tuple[Tuple[str, str], ...] = (
    ("/repro/ssd/firmware/ftl/gc", "gc"),
    ("/repro/ssd/firmware/ftl/", "ftl"),
    ("/repro/ssd/firmware/icl", "icl"),
    ("/repro/ssd/firmware/fil", "fil"),
    ("/repro/ssd/firmware/", "hil"),
    ("/repro/ssd/storage/", "flash"),
    ("/repro/ssd/", "ssd"),
    ("/repro/interfaces/nvme/", "nvme"),
    ("/repro/interfaces/sata/", "sata"),
    ("/repro/interfaces/ufs/", "ufs"),
    ("/repro/interfaces/ocssd/", "ocssd"),
    ("/repro/interfaces/", "interface"),
    ("/repro/hostos/", "hostos"),
    ("/repro/core/", "host"),
    ("/repro/workloads/", "host"),
    ("/repro/baselines/", "baseline"),
    ("/repro/sim/", "sim"),
)

_active = False
_max_slices = 2048
_profilers: List["WallProfiler"] = []


def profiling_enabled() -> bool:
    """True while the process-wide profiling switch is on."""
    return _active


def enable_profiling(max_slices: int = 2048) -> None:
    """Arm wall-clock profiling for every subsequently-built simulator.

    ``max_slices`` bounds how many of the slowest per-event dispatch
    slices each profiler retains for the Chrome trace; attribution
    totals always cover every event regardless.
    """
    global _active, _max_slices
    if max_slices < 1:
        raise ValueError("max_slices must be >= 1")
    _active = True
    _max_slices = int(max_slices)
    _profilers.clear()


def disable_profiling() -> None:
    """Turn profiling off and drop every collected profiler."""
    global _active
    _active = False
    _profilers.clear()


def profiler_for(sim) -> Optional["WallProfiler"]:
    """A live profiler for a new simulator, or ``None`` when off."""
    if not _active:
        return None
    profiler = WallProfiler(label=f"system{len(_profilers)}",
                            max_slices=_max_slices)
    _profilers.append(profiler)
    return profiler


def profilers() -> List["WallProfiler"]:
    """Every profiler handed out since profiling was enabled."""
    return list(_profilers)


def _categorize(filename: Optional[str]) -> str:
    """Map a code-object filename onto its layer category."""
    if not filename:
        return "sim"
    path = filename.replace(os.sep, "/")
    for marker, category in _CATEGORY_RULES:
        if marker in path:
            return category
    return "other"


def _callback_code(callback) -> Any:
    """The code object that best identifies where a dispatch will run.

    Resuming a process executes the *generator's* frame, so a bound
    ``Process._resume`` is keyed by ``gi_code`` of the wrapped
    generator; anything else is keyed by its own ``__code__``.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        generator = getattr(owner, "_generator", None)
        if generator is not None:
            code = getattr(generator, "gi_code", None)
            if code is not None:
                return code
    func = getattr(callback, "__func__", callback)
    return getattr(func, "__code__", None)


class WallProfiler:
    """Per-simulator wall-time accumulator, attributed per layer/module.

    ``record`` runs once per dispatched event inside the profiled loops;
    it is deliberately dictionary arithmetic only.  Category/module
    lookups are memoized per code object, so steady state costs one
    dict hit plus two float adds per event.
    """

    __slots__ = ("label", "max_slices", "run_wall_s", "dispatch_wall_s",
                 "events", "runs", "categories", "modules", "_slices",
                 "_by_code")

    def __init__(self, label: str = "", max_slices: int = 2048) -> None:
        self.label = label
        self.max_slices = max_slices
        self.run_wall_s = 0.0         # total measured loop wall time
        self.dispatch_wall_s = 0.0    # the part spent inside callbacks
        self.events = 0
        self.runs = 0
        #: category -> [calls, seconds]
        self.categories: Dict[str, List[float]] = {}
        #: dotted module (or filename) -> [calls, seconds]
        self.modules: Dict[str, List[float]] = {}
        #: min-heap of (dur_s, seq, ts_s, category, name): slowest kept
        self._slices: List[Tuple[float, int, float, str, str]] = []
        self._by_code: Dict[Any, Tuple[str, str]] = {}

    # -- hot path ----------------------------------------------------------

    def record(self, callbacks, ts_s: float, dur_s: float) -> None:
        """Attribute one event dispatch (``dur_s`` of wall time)."""
        self.events += 1
        self.dispatch_wall_s += dur_s
        key = _callback_code(callbacks[0]) if callbacks else None
        hit = self._by_code.get(key)
        if hit is None:
            filename = getattr(key, "co_filename", None)
            name = getattr(key, "co_name", "(no callback)")
            hit = self._by_code[key] = (
                _categorize(filename),
                f"{os.path.basename(filename or 'sim')}:{name}")
        category, name = hit
        bucket = self.categories.get(category)
        if bucket is None:
            bucket = self.categories[category] = [0, 0.0]
        bucket[0] += 1
        bucket[1] += dur_s
        mod = self.modules.get(name)
        if mod is None:
            mod = self.modules[name] = [0, 0.0]
        mod[0] += 1
        mod[1] += dur_s
        slices = self._slices
        if len(slices) < self.max_slices:
            heapq.heappush(slices, (dur_s, self.events, ts_s, category, name))
        elif dur_s > slices[0][0]:
            heapq.heapreplace(slices,
                              (dur_s, self.events, ts_s, category, name))

    def note_run(self, wall_s: float) -> None:
        """Account one completed ``run``/``run_process`` invocation."""
        self.runs += 1
        self.run_wall_s += wall_s

    # -- results -----------------------------------------------------------

    def kernel_wall_s(self) -> float:
        """Loop overhead no callback accounts for (booked under ``sim``)."""
        return max(0.0, self.run_wall_s - self.dispatch_wall_s)

    def slices(self) -> List[Tuple[float, int, float, str, str]]:
        """Retained slowest dispatch slices, slowest first."""
        return sorted(self._slices, reverse=True)


# -- aggregation and exports --------------------------------------------------


def attribution(profs: Optional[List[WallProfiler]] = None) -> Dict:
    """Merge profilers into one per-layer wall-time attribution document.

    ``layers`` maps category -> ``{"calls", "seconds", "share"}`` where
    shares are fractions of the total measured wall time; kernel loop
    overhead is folded into ``sim`` so the shares sum to 1.0 (the
    "attribute >= 95% of measured wall time" contract is pinned by
    test).  ``modules`` keeps the finer file:function grain.
    """
    profs = profilers() if profs is None else profs
    total = sum(p.run_wall_s for p in profs)
    layers: Dict[str, Dict[str, float]] = {}
    modules: Dict[str, Dict[str, float]] = {}
    kernel = 0.0
    events = 0
    for prof in profs:
        events += prof.events
        kernel += prof.kernel_wall_s()
        for cat, (calls, seconds) in prof.categories.items():
            entry = layers.setdefault(cat, {"calls": 0, "seconds": 0.0})
            entry["calls"] += calls
            entry["seconds"] += seconds
        for name, (calls, seconds) in prof.modules.items():
            entry = modules.setdefault(name, {"calls": 0, "seconds": 0.0})
            entry["calls"] += calls
            entry["seconds"] += seconds
    if kernel > 0.0 or "sim" in layers:
        entry = layers.setdefault("sim", {"calls": 0, "seconds": 0.0})
        entry["seconds"] += kernel
    attributed = sum(entry["seconds"] for entry in layers.values())
    for entry in layers.values():
        entry["share"] = entry["seconds"] / total if total else 0.0
    return {
        "label": ", ".join(p.label for p in profs) or "(no profilers)",
        "total_wall_s": total,
        "kernel_wall_s": kernel,
        "events": events,
        "runs": sum(p.runs for p in profs),
        "attributed_fraction": attributed / total if total else 0.0,
        "layers": layers,
        "modules": modules,
    }


def hottest_layers(doc: Dict, n: int = 3) -> List[str]:
    """The ``n`` layers with the most attributed wall time, hottest first."""
    ranked = sorted(doc["layers"].items(),
                    key=lambda item: (-item[1]["seconds"], item[0]))
    return [name for name, _entry in ranked[:n]]


def attribution_markdown(profs: Optional[List[WallProfiler]] = None,
                         title: str = "Wall-clock attribution") -> str:
    """Render the merged attribution as the Markdown table CI uploads."""
    doc = attribution(profs)
    out: List[str] = [f"# {title}", ""]
    total = doc["total_wall_s"]
    out.append(f"Measured {total:.4f}s of wall time over {doc['runs']} "
               f"run(s), {doc['events']} dispatched event(s); "
               f"{doc['attributed_fraction'] * 100.0:.1f}% attributed "
               f"({doc['kernel_wall_s']:.4f}s kernel loop, booked under "
               "`sim`).")
    out += ["", "| layer | calls | wall ms | share |",
            "|---|---:|---:|---:|"]
    ranked = sorted(doc["layers"].items(),
                    key=lambda item: (-item[1]["seconds"], item[0]))
    for name, entry in ranked:
        out.append(f"| `{name}` | {int(entry['calls'])} "
                   f"| {entry['seconds'] * 1e3:.2f} "
                   f"| {entry['share'] * 100.0:.1f}% |")
    top = hottest_layers(doc)
    if top:
        out += ["", "Top-{n} hottest layers: {names}.".format(
            n=len(top), names=", ".join(f"`{name}`" for name in top))]
    hot_modules = sorted(doc["modules"].items(),
                         key=lambda item: (-item[1]["seconds"], item[0]))[:10]
    if hot_modules:
        out += ["", "| hottest call sites | calls | wall ms |",
                "|---|---:|---:|"]
        for name, entry in hot_modules:
            out.append(f"| `{name}` | {int(entry['calls'])} "
                       f"| {entry['seconds'] * 1e3:.2f} |")
    out.append("")
    return "\n".join(out)


def chrome_profile_trace(profs: Optional[List[WallProfiler]] = None) -> Dict:
    """Chrome ``trace_event`` document of the retained dispatch slices.

    One process per profiler, one thread track per layer; timestamps
    and durations are **wall-clock** microseconds (unlike
    :mod:`repro.obs.export`, whose axis is simulated time).
    """
    profs = profilers() if profs is None else profs
    events: List[Dict] = []
    for pid, prof in enumerate(profs):
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"wallprof {prof.label}"}})
        tids: Dict[str, int] = {}
        for dur_s, _seq, ts_s, category, name in prof.slices():
            tid = tids.setdefault(category, len(tids) + 1)
            events.append({"ph": "X", "pid": pid, "tid": tid,
                           "name": name, "cat": category,
                           "ts": round(ts_s * 1e6, 3),
                           "dur": round(dur_s * 1e6, 3)})
        for category, tid in sorted(tids.items()):
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": category}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_profile_trace(path,
                        profs: Optional[List[WallProfiler]] = None) -> int:
    """Write the Chrome trace; returns the number of trace events."""
    doc = chrome_profile_trace(profs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
        handle.write("\n")
    return len(doc["traceEvents"])


def write_profile(base_path,
                  profs: Optional[List[WallProfiler]] = None,
                  title: str = "Wall-clock attribution") -> List[str]:
    """Write ``<base>.md`` + ``<base>.trace.json``; returns the paths.

    The CLI surface (``--profile``/``--self-profile``) funnels here so
    every entry point emits the same artifact pair.
    """
    base = str(base_path)
    for suffix in (".md", ".trace.json", ".json"):
        if base.endswith(suffix):
            base = base[:-len(suffix)]
            break
    markdown_path = base + ".md"
    trace_path = base + ".trace.json"
    with open(markdown_path, "w", encoding="utf-8") as handle:
        handle.write(attribution_markdown(profs, title=title))
    write_profile_trace(trace_path, profs)
    return [markdown_path, trace_path]


# -- the profiled engine loops ------------------------------------------------
#
# Exact mirrors of Simulator.run / Simulator.run_process (repro.sim.
# engine) with perf_counter reads wrapped around each callback dispatch.
# They live here — not in engine.py — so every wall-clock read in the
# tree stays inside a designated profiling module (simlint SIM110), and
# so the unprofiled hot loops stay byte-for-byte what SIM108 pins.
# tests/test_obs_profiler.py holds the behavioural equivalence
# (events_processed, sim.now, results) against the unprofiled engine.


def run_profiled(sim, until: Optional[int] = None) -> None:
    """Profiled clone of :meth:`repro.sim.engine.Simulator.run`."""
    profiler = sim.profiler
    queue = sim._queue
    pop = heapq.heappop
    record_orphan = sim._record_orphan_failure
    telemetry = sim.telemetry
    sanitizer = sim.sanitizer
    record = profiler.record
    clock = time.perf_counter
    t_loop = clock()
    try:
        while queue:
            if until is not None and queue[0][0] > until:
                sim._now = until
                return
            when, _seq, event = pop(queue)
            if event._cancelled:
                continue
            sim._now = when
            sim._event_count += 1
            if telemetry is not None:
                telemetry.on_event(when, event)
            if sanitizer is not None:
                sanitizer.on_event(when, event)
            event._processed = True
            callbacks, event.callbacks = event.callbacks, None
            if not event._ok and not callbacks:
                record_orphan(event)
            t0 = clock()
            for callback in callbacks:
                callback(event)
            record(callbacks, t0 - t_loop, clock() - t0)
        if until is not None:
            sim._now = until
        elif sanitizer is not None:
            sanitizer.on_drain()
    finally:
        profiler.note_run(clock() - t_loop)


def run_process_profiled(sim, generator,
                         until: Optional[int] = None) -> Any:
    """Profiled clone of :meth:`repro.sim.engine.Simulator.run_process`."""
    profiler = sim.profiler
    proc = sim.process(generator)
    queue = sim._queue
    pop = heapq.heappop
    record_orphan = sim._record_orphan_failure
    telemetry = sim.telemetry
    sanitizer = sim.sanitizer
    record = profiler.record
    clock = time.perf_counter
    t_loop = clock()
    try:
        while not proc._processed and queue:
            if until is not None and queue[0][0] > until:
                break
            when, _seq, event = pop(queue)
            if event._cancelled:
                continue
            sim._now = when
            sim._event_count += 1
            if telemetry is not None:
                telemetry.on_event(when, event)
            if sanitizer is not None:
                sanitizer.on_event(when, event)
            event._processed = True
            callbacks, event.callbacks = event.callbacks, None
            if not event._ok and not callbacks:
                record_orphan(event)
            t0 = clock()
            for callback in callbacks:
                callback(event)
            record(callbacks, t0 - t_loop, clock() - t0)
    finally:
        profiler.note_run(clock() - t_loop)
    if not proc._processed:
        if until is not None and sim._now < until:
            sim._now = until
        sim.check_orphan_failures()
        error = RuntimeError("process did not complete"
                             + ("" if until is None
                                else " before the deadline"))
        sim._notify_failure(error)
        raise error
    if not proc._ok:
        sim._notify_failure(proc._value)
        raise proc._value
    return proc._value

"""Physical page allocation: write pointers, free pools, superpage striping.

Each parallel unit (die-plane) owns an *active block* with an in-order
write pointer and a pool of erased blocks.  Superpages stripe one page
slot per unit across a configurable channel/way span, so a full-line
flush programs all spanned units in parallel — the multi-channel,
multi-way parallelism of Figure 2.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.ssd.config import SSDConfig
from repro.ssd.storage.array import FlashArray


class OutOfBlocksError(RuntimeError):
    """A unit has no erased block to allocate from (GC must run first)."""


class _UnitState:
    __slots__ = ("free", "active", "filled", "retired")

    def __init__(self, blocks: int) -> None:
        self.free: Deque[int] = deque(range(blocks))
        self.active: Optional[int] = None
        # insertion-ordered set of fully-programmed blocks: O(1) add and
        # remove, FIFO iteration (same order the old list gave)
        self.filled: Dict[int, None] = {}
        self.retired: List[int] = []


class PageAllocator:
    """Write-pointer allocation over all parallel units."""

    def __init__(self, config: SSDConfig, array: FlashArray) -> None:
        self.config = config
        self.array = array
        geom = config.geometry
        self._units = [_UnitState(geom.blocks_per_plane)
                       for _ in range(geom.parallel_units)]
        self._span_channels = config.superpage_channels or geom.channels
        self._span_ways = config.superpage_ways
        self._slots = self._span_channels * self._span_ways * geom.planes_per_die
        if geom.channels % self._span_channels:
            raise ValueError("superpage channel span must divide channel count")
        if geom.ways_per_channel % self._span_ways:
            raise ValueError("superpage way span must divide way count")

    # -- superpage geometry -------------------------------------------------

    @property
    def slots_per_line(self) -> int:
        return self._slots

    def line_units(self, line_id: int) -> List[int]:
        """Parallel units backing each page slot of a logical line.

        With ``fil.placement == "rotate"`` (default), consecutive lines
        rotate across way groups (and channel groups if the span is
        partial) so streams pipeline over all resources.  With
        ``"banded"``, the logical line space is cut into one contiguous
        band per (channel, way) group instead: a namespace confined to
        one band touches only its own dies, and since GC works per
        parallel unit, its garbage collection cannot disturb other
        bands (die-level tenant isolation; see docs/MULTITENANT.md).
        """
        geom = self.config.geometry
        planes = geom.planes_per_die
        ways = geom.ways_per_channel
        n_cgroups = geom.channels // self._span_channels
        n_wgroups = ways // self._span_ways
        if self.config.fil.placement == "banded":
            n_groups = n_cgroups * n_wgroups
            n_lines = self.config.logical_capacity // self.config.superpage_size
            band = min(n_groups - 1, line_id * n_groups // max(1, n_lines))
            # channel-major: adjacent bands share a channel, so a tenant
            # holding a contiguous run of bands owns whole channels (bus
            # isolation), not just whole dies
            cgroup = band // n_wgroups
            wgroup = band % n_wgroups
        else:
            cgroup = line_id % n_cgroups
            wgroup = (line_id // n_cgroups) % n_wgroups

        order = self.config.fil.parallelism_order
        units: List[int] = []
        for slot in range(self._slots):
            if order == "way_first":
                w_in = slot // (self._span_channels * planes)
                rest = slot % (self._span_channels * planes)
                ch_in = rest // planes
            else:  # channel_first
                ch_in = slot // (self._span_ways * planes)
                rest = slot % (self._span_ways * planes)
                w_in = rest // planes
            plane = rest % planes
            channel = cgroup * self._span_channels + ch_in
            way = wgroup * self._span_ways + w_in
            units.append((channel * ways + way) * planes + plane)
        return units

    # -- allocation -----------------------------------------------------------

    def free_blocks(self, unit: int) -> int:
        state = self._units[unit]
        return len(state.free) + (1 if state.active is None else 0)

    def needs_gc(self, unit: int) -> bool:
        return len(self._units[unit].free) <= self.config.ftl.gc_threshold_free_blocks

    def can_allocate(self, unit: int) -> bool:
        state = self._units[unit]
        if state.active is not None:
            return True
        return bool(state.free)

    def allocate(self, unit: int, now: int) -> int:
        """Claim the next in-order page of the unit's active block.

        Updates the array state immediately (the physical write pointer
        advanced); the caller charges flash timing separately.
        """
        geom = self.config.geometry
        state = self._units[unit]
        if state.active is None:
            if not state.free:
                raise OutOfBlocksError(f"unit {unit} has no free blocks")
            state.active = state.free.popleft()
        block = self.array.block(unit, state.active)
        page = block.next_page
        ppn = self.array.mapper.ppn_from_unit(unit, state.active, page)
        self.array.program_ppn(ppn, now)
        if block.is_fully_programmed(geom.pages_per_block):
            state.filled[state.active] = None
            state.active = None
        return ppn

    # -- GC support -------------------------------------------------------------

    def filled_blocks(self, unit: int) -> List[int]:
        return list(self._units[unit].filled)

    def reclaim(self, unit: int, block: int) -> None:
        """Return an erased block to the unit's free pool."""
        state = self._units[unit]
        state.filled.pop(block, None)
        state.free.append(block)

    def retire_block(self, unit: int, block: int) -> None:
        """Bad-block management: take a failed block out of service."""
        state = self._units[unit]
        state.filled.pop(block, None)
        if block in state.free:
            state.free.remove(block)
        if state.active == block:
            state.active = None
        state.retired.append(block)

    def retired_blocks(self, unit: int) -> List[int]:
        return list(self._units[unit].retired)

    def total_retired(self) -> int:
        return sum(len(state.retired) for state in self._units)

    def gc_candidates(self, unit: int) -> List[int]:
        """Blocks eligible as GC victims: fully programmed, not active."""
        pages = self.config.geometry.pages_per_block
        return [b for b in self._units[unit].filled
                if self.array.block(unit, b).valid_count < pages]

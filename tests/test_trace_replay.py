"""Standalone trace-replay mode tests."""

import pytest

from repro.common.iorequest import IOKind
from repro.sim import Simulator
from repro.ssd.device import SSD
from repro.ssd.trace import (
    SsdTraceReplayer,
    TraceRecord,
    parse_trace,
    synthetic_trace,
)

from tests.conftest import tiny_ssd_config


@pytest.fixture
def ssd(sim):
    device = SSD(sim, tiny_ssd_config())
    device.precondition_sequential()
    return device


class TestParse:
    def test_parses_valid_lines(self):
        lines = [
            "# comment",
            "",
            "0 R 0 8",
            "1000 W 16 8",
            "2000 T 0 8",
            "3000 F 0 0",
        ]
        records = list(parse_trace(lines))
        assert len(records) == 4
        assert records[0].kind == IOKind.READ
        assert records[1].kind == IOKind.WRITE
        assert records[2].kind == IOKind.TRIM
        assert records[3].kind == IOKind.FLUSH

    def test_bad_field_count(self):
        with pytest.raises(ValueError, match="line 1"):
            list(parse_trace(["0 R 0"]))

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            list(parse_trace(["0 X 0 8"]))


class TestReplay:
    def test_open_loop_honours_timestamps(self, sim, ssd):
        trace = [TraceRecord(0, IOKind.READ, 0, 4),
                 TraceRecord(5_000_000, IOKind.READ, 64, 4)]
        result = SsdTraceReplayer(ssd).replay(trace, open_loop=True)
        assert result.completed == 2
        assert result.elapsed_ns >= 5_000_000

    def test_closed_loop_ignores_timestamps(self, sim, ssd):
        trace = [TraceRecord(50_000_000, IOKind.READ, i * 8, 4)
                 for i in range(10)]
        result = SsdTraceReplayer(ssd).replay(trace, open_loop=False,
                                              iodepth=4)
        assert result.completed == 10
        assert result.elapsed_ns < 50_000_000

    def test_replay_from_text(self, sim, ssd):
        result = SsdTraceReplayer(ssd).replay(
            ["0 R 0 8", "100 W 0 8", "200 F 0 0"])
        assert result.completed == 3
        assert result.mean_latency_us > 0

    def test_synthetic_trace_shape(self):
        trace = synthetic_trace(50, "seqwrite", bs=8192,
                                interarrival_ns=1000)
        assert len(trace) == 50
        assert trace[1].slba == trace[0].slba + 16
        assert trace[-1].time_ns == 49_000
        assert all(r.kind == IOKind.WRITE for r in trace)

    def test_closed_loop_deeper_is_faster(self, tiny_config):
        results = {}
        for depth in (1, 8):
            sim = Simulator()
            device = SSD(sim, tiny_config)
            device.precondition_sequential()
            trace = synthetic_trace(60, "randread", bs=2048,
                                    region_sectors=tiny_config.logical_sectors)
            results[depth] = SsdTraceReplayer(device).replay(
                trace, open_loop=False, iodepth=depth)
        assert results[8].elapsed_ns < results[1].elapsed_ns

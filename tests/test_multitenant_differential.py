"""Differential checks: multi-tenant runs against equivalent baselines.

Two families:

* **aggregation equivalence** — N identical tenants sharing a device
  behave like one FIO workload at N× intensity (``numjobs=N`` on a
  single shared namespace, so host-side submission parallelism is
  identical): same total drive throughput and write amplification
  within tolerance — partitioning into namespaces/queues must not
  create or destroy work.  Reads get a looser band than writes: halving
  each tenant's address range legitimately raises the device cache's
  hit rate a little;
* **interference ordering** — the noisy-neighbor suite's pinned
  acceptance facts: a victim's p99 under a round-robin-arbitrated
  aggressor strictly exceeds its isolated baseline, and each QoS
  mechanism (WFQ arbitration, die banding) measurably recovers it.
"""

import pytest

from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.core.tenants import MultiTenantJob, TenantSpec

from tests.conftest import tiny_ssd_config


def _run_tenants(rw, seed=777):
    system = FullSystem(device=tiny_ssd_config(), interface="nvme")
    job = MultiTenantJob(tenants=(
        TenantSpec(name="a", rw=rw, bs=2048, iodepth=4, total_ios=200),
        TenantSpec(name="b", rw=rw, bs=2048, iodepth=4, total_ios=200,
                   seed=1)), seed=seed)
    result = system.run_multi_tenant(job)
    throughput = result.total_bytes / max(1, result.elapsed_ns)
    stats = system.ssd.stats_report()
    return result, throughput, stats.get("write_amplification", 1.0)


def _run_fio_baseline(rw, seed=777):
    system = FullSystem(device=tiny_ssd_config(), interface="nvme")
    result = system.run_fio(FioJob(rw=rw, bs=2048, iodepth=4, numjobs=2,
                                   total_ios=200, seed=seed))
    throughput = result.total_bytes / max(1, result.elapsed_ns)
    return result, throughput, result.ssd_stats.get(
        "write_amplification", 1.0)


class TestAggregationEquivalence:

    def test_split_write_tenants_match_shared_namespace_baseline(self):
        split, split_tput, split_waf = _run_tenants("randwrite")
        base, base_tput, base_waf = _run_fio_baseline("randwrite")
        assert split.total_ios == base.total_ios == 400
        assert split.total_bytes == base.total_bytes
        assert split_tput == pytest.approx(base_tput, rel=0.15)
        assert split_waf == pytest.approx(base_waf, rel=0.35), \
            "namespace partitioning should not blow up GC behaviour"

    def test_split_read_tenants_match_shared_namespace_baseline(self):
        split, split_tput, _ = _run_tenants("randread")
        base, base_tput, _ = _run_fio_baseline("randread")
        assert split.total_ios == base.total_ios == 400
        assert split_tput == pytest.approx(base_tput, rel=0.30)


class TestNoisyNeighborOrdering:
    """The pinned acceptance facts of the noisy-neighbor experiment.

    One quick run (seconds) feeds every assertion; the exact payload is
    additionally bit-pinned by ``tests/golden/multi_tenant_noisy.json``.
    """

    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments import noisy_neighbor
        return noisy_neighbor.run(quick=True)

    def test_aggressor_degrades_victim_under_rr(self, results):
        p99 = results["victim_p99_us"]
        assert p99["rr"] > p99["isolated"], \
            "co-located aggressor must inflate the victim tail"
        assert results["recovery"]["rr_vs_isolated"] > 10, \
            "interference should be an order of magnitude, not noise"

    def test_wfq_measurably_recovers_the_victim(self, results):
        assert results["recovery"]["wfq_vs_rr"] < 0.8
        p99 = results["victim_p99_us"]
        assert p99["wfq"] < p99["rr"]

    def test_die_banding_recovers_near_isolation(self, results):
        assert results["recovery"]["banded_vs_rr"] < 0.1
        p99 = results["victim_p99_us"]
        # die+channel isolation should land within ~3x of running alone
        assert p99["banded"] < 3 * p99["isolated"]

    def test_per_tenant_metrics_reported_per_variant(self, results):
        for variant, doc in results["variants"].items():
            metrics = doc["tenant_metrics"]
            assert "tenant0" in metrics
            assert metrics["tenant0"]["tenant0.completed"] > 0
            if variant != "isolated":
                assert metrics["tenant1"]["tenant1.completed"] > 0
                assert doc["fairness"] > 0
                assert len(doc["grants"]) == 2

    def test_gc_confined_by_banding(self, results):
        # the aggressor triggers GC in every co-located variant; banding
        # must not eliminate it (the aggressor still thrashes its own
        # dies) — interference relief comes from *where* GC runs
        assert results["variants"]["banded"]["gc_runs"] > 0
        assert results["variants"]["rr"]["gc_runs"] > 0
        assert results["variants"]["isolated"]["gc_runs"] == 0

"""Differential run explanation: *why* do two runs have different tails?

Consumes the causal summaries (:func:`repro.obs.causal.causal_summary`)
embedded in two result documents — normally two jobs pulled from a
fleet :class:`~repro.fleet.store.ResultStore` by ``python -m repro.fleet
explain HASH_A HASH_B`` — and produces a deterministic explain document:
per op kind, the p50/p99/mean end-to-end delta between run B and run A,
decomposed into per-component deltas **ranked by contribution to the
p99 delta** (tie-broken by mean delta, then component name).  Because
the causal components of every request sum exactly to its end-to-end
latency, the per-component *mean* deltas sum exactly to the end-to-end
mean delta — the report is a decomposition, not a correlation.

Blame ledgers ride along: the aggregate simulated time each op spent
blocked behind a specific offender (``gc:<run>``, ``ns:<nsid>``,
``req:<id>``, ``bg``), diffed the same way, so "banded placement cut
the victim's p99" comes with "because gc:* stall time fell by N µs".

Rendering is plain data -> Markdown (or the same content as one
self-contained HTML page); byte-stable for fixed inputs, which is what
lets CI ``cmp`` explain reports produced from stores built with
different ``--jobs`` counts.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional

from repro.obs.causal import COMPONENTS
from repro.obs.histogram import LogHistogram

#: scalar result keys echoed in the explain header when both runs have them
_SCALAR_KEYS = ("iops", "bandwidth_mbps", "mean_latency_us",
                "p50_latency_us", "p99_latency_us", "write_amplification",
                "fairness")


def merged_ops(causal_doc: Dict) -> Dict[str, Dict]:
    """Fold a causal summary's per-system op entries into one per-op map.

    A fleet job usually builds one simulator, but experiments like
    ``noisy_neighbor`` run several labelled systems in one process;
    merging sums counts and component ns, merges the lossless histograms
    and keeps every worst record (slowest first, deterministically).
    """
    ops: Dict[str, Dict] = {}
    for system in causal_doc.get("systems", []):
        for op, entry in system.get("ops", {}).items():
            agg = ops.get(op)
            if agg is None:
                agg = ops[op] = {
                    "count": 0, "total_ns": 0, "components_ns": {},
                    "latency_hist": LogHistogram(),
                    "component_hist": {}, "blame_ns": {}, "worst": [],
                }
            agg["count"] += entry["count"]
            agg["total_ns"] += entry["total_ns"]
            for comp, ns in entry.get("components_ns", {}).items():
                agg["components_ns"][comp] = \
                    agg["components_ns"].get(comp, 0) + ns
            agg["latency_hist"].merge(
                LogHistogram.from_dict(entry["latency_hist"]))
            for comp, encoded in entry.get("component_hist", {}).items():
                hist = agg["component_hist"].get(comp)
                if hist is None:
                    hist = agg["component_hist"][comp] = LogHistogram()
                hist.merge(LogHistogram.from_dict(encoded))
            for holder, ns in entry.get("blame_ns", {}).items():
                agg["blame_ns"][holder] = agg["blame_ns"].get(holder, 0) + ns
            agg["worst"].extend(entry.get("worst", []))
    for agg in ops.values():
        agg["worst"].sort(
            key=lambda rec: (-rec["total_ns"], rec["t_start"], rec["track"]))
    return ops


def _component_order(*maps: Dict) -> List[str]:
    """Taxonomy order first, then any unexpected components, sorted."""
    seen = set()
    for mapping in maps:
        seen.update(mapping)
    ordered = [comp for comp in COMPONENTS if comp in seen]
    ordered += sorted(seen - set(COMPONENTS))
    return ordered


def _op_delta(op: str, a: Optional[Dict], b: Optional[Dict]) -> Dict:
    """The explain entry for one op kind: end-to-end and per-component
    deltas (B minus A, ns), components ranked by |Δp99| then |Δmean|."""
    empty = {"count": 0, "total_ns": 0, "components_ns": {},
             "latency_hist": LogHistogram(), "component_hist": {},
             "blame_ns": {}, "worst": []}
    a = a or empty
    b = b or empty

    def stats(agg: Dict) -> Dict:
        hist = agg["latency_hist"]
        p50, p99 = hist.percentiles([50, 99]) if hist.count else (0.0, 0.0)
        mean = agg["total_ns"] / agg["count"] if agg["count"] else 0.0
        return {"count": agg["count"], "mean_ns": mean,
                "p50_ns": p50, "p99_ns": p99}

    sa, sb = stats(a), stats(b)
    components = []
    for comp in _component_order(a["components_ns"], b["components_ns"],
                                 a["component_hist"], b["component_hist"]):
        def side(agg: Dict, stat: Dict) -> Dict:
            mean = (agg["components_ns"].get(comp, 0) / agg["count"]
                    if agg["count"] else 0.0)
            hist = agg["component_hist"].get(comp)
            p99 = hist.percentile(99) if hist is not None and hist.count \
                else 0.0
            return {"mean_ns": mean, "p99_ns": p99}
        ca, cb = side(a, sa), side(b, sb)
        components.append({
            "component": comp,
            "a": ca, "b": cb,
            "d_mean_ns": cb["mean_ns"] - ca["mean_ns"],
            "d_p99_ns": cb["p99_ns"] - ca["p99_ns"],
        })
    components.sort(key=lambda row: (-abs(row["d_p99_ns"]),
                                     -abs(row["d_mean_ns"]),
                                     row["component"]))
    blame = {}
    for holder in sorted(set(a["blame_ns"]) | set(b["blame_ns"])):
        blame[holder] = {"a_ns": a["blame_ns"].get(holder, 0),
                         "b_ns": b["blame_ns"].get(holder, 0)}
    return {
        "op": op,
        "a": sa, "b": sb,
        "d_mean_ns": sb["mean_ns"] - sa["mean_ns"],
        "d_p50_ns": sb["p50_ns"] - sa["p50_ns"],
        "d_p99_ns": sb["p99_ns"] - sa["p99_ns"],
        "components": components,
        "blame": blame,
    }


def _run_header(doc: Dict) -> Dict:
    """The identifying bits of one result document for the report head."""
    result = doc.get("result", {})
    return {
        "config_hash": doc.get("config_hash", ""),
        "params": {key: value
                   for key, value in sorted(doc.get("params", {}).items())
                   if not isinstance(value, (list, dict))},
        "metrics": {key: result[key] for key in _SCALAR_KEYS
                    if key in result},
    }


def explain(doc_a: Dict, doc_b: Dict) -> Dict:
    """Build the explain document for two stored result documents.

    Each must be a fleet store document (``config_hash``/``params``/
    ``result``) whose result carries a ``"causal"`` summary — i.e. the
    sweep ran with ``--causal``.  Raises ``ValueError`` otherwise.  The
    output is JSON-able and deterministic for fixed inputs.
    """
    causal = []
    for doc in (doc_a, doc_b):
        payload = doc.get("result", {}).get("causal")
        if not payload:
            raise ValueError(
                f"result {doc.get('config_hash', '?')[:12]} has no causal "
                "capture; rerun the sweep with --causal")
        causal.append(payload)
    ops_a, ops_b = merged_ops(causal[0]), merged_ops(causal[1])
    ops = {op: _op_delta(op, ops_a.get(op), ops_b.get(op))
           for op in sorted(set(ops_a) | set(ops_b))}
    return {
        "schema": "repro.explain/1",
        "a": _run_header(doc_a),
        "b": _run_header(doc_b),
        "violations": {
            "a": causal[0].get("violations", 0),
            "b": causal[1].get("violations", 0)},
        "ops": ops,
    }


# -- rendering ----------------------------------------------------------------


def _us(ns: float) -> str:
    """Format a ns quantity as µs with a stable precision."""
    return f"{ns / 1000.0:.2f}"


def _signed_us(ns: float) -> str:
    """Signed µs delta (explicit ``+`` so direction is unmissable)."""
    return f"{ns / 1000.0:+.2f}"


def _axes_label(header: Dict) -> str:
    """Compact ``k=v`` summary of a run's scalar parameters."""
    params = header.get("params", {})
    return ", ".join(f"{key}={params[key]}" for key in sorted(params)) \
        or "(base)"


def render_explain_markdown(doc: Dict) -> str:
    """Render an explain document as GitHub-flavoured Markdown."""
    a, b = doc["a"], doc["b"]
    out: List[str] = [
        "# Run explain — B vs A", "",
        f"* **A** `{a['config_hash'][:12]}` — {_axes_label(a)}",
        f"* **B** `{b['config_hash'][:12]}` — {_axes_label(b)}", ""]
    metrics = sorted(set(a["metrics"]) & set(b["metrics"]))
    if metrics:
        out += ["| metric | A | B | Δ (B−A) |", "|---|---:|---:|---:|"]
        for key in metrics:
            va, vb = a["metrics"][key], b["metrics"][key]
            out.append(f"| {key} | {va:.4g} | {vb:.4g} | {vb - va:+.4g} |")
        out.append("")
    violations = doc.get("violations", {})
    out += [f"Conservation violations: A={violations.get('a', 0)}, "
            f"B={violations.get('b', 0)} (must be 0 — every request's "
            "components sum exactly to its latency).", ""]
    for op, entry in sorted(doc["ops"].items()):
        sa, sb = entry["a"], entry["b"]
        out += [
            f"## Op `{op}`", "",
            f"{sa['count']} requests in A, {sb['count']} in B.  "
            f"Δmean {_signed_us(entry['d_mean_ns'])} µs, "
            f"Δp50 {_signed_us(entry['d_p50_ns'])} µs, "
            f"Δp99 {_signed_us(entry['d_p99_ns'])} µs.", "",
            "| component | A mean µs | B mean µs | Δmean µs "
            "| A p99 µs | B p99 µs | Δp99 µs |",
            "|---|---:|---:|---:|---:|---:|---:|"]
        for row in entry["components"]:
            out.append(
                f"| `{row['component']}` "
                f"| {_us(row['a']['mean_ns'])} | {_us(row['b']['mean_ns'])} "
                f"| {_signed_us(row['d_mean_ns'])} "
                f"| {_us(row['a']['p99_ns'])} | {_us(row['b']['p99_ns'])} "
                f"| {_signed_us(row['d_p99_ns'])} |")
        out.append("")
        if entry["blame"]:
            out += ["Blame ledger (aggregate wait blocked behind each "
                    "offender):", "",
                    "| offender | A µs | B µs | Δ µs |",
                    "|---|---:|---:|---:|"]
            for holder, sides in sorted(
                    entry["blame"].items(),
                    key=lambda item: (-abs(item[1]["b_ns"]
                                           - item[1]["a_ns"]), item[0])):
                out.append(
                    f"| `{holder}` | {_us(sides['a_ns'])} "
                    f"| {_us(sides['b_ns'])} "
                    f"| {_signed_us(sides['b_ns'] - sides['a_ns'])} |")
            out.append("")
    out.append("")
    return "\n".join(out)


_CSS = """
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:62rem;
color:#1a1a1a}
table{border-collapse:collapse;margin:0.5rem 0 1.5rem}
th,td{border:1px solid #d0d0d0;padding:0.25rem 0.6rem;text-align:right}
th:first-child,td:first-child{text-align:left}
code{background:#f4f4f4;padding:0 0.2rem}
"""


def _inline_html(text: str) -> str:
    """Escape a markdown fragment, keeping `code` spans as ``<code>``."""
    parts = text.split("`")
    out: List[str] = []
    for index, part in enumerate(parts):
        escaped = _html.escape(part)
        out.append(f"<code>{escaped}</code>" if index % 2 else escaped)
    return "".join(out)


def markdown_to_html(markdown: str, title: str) -> str:
    """Convert the simple markdown dialect of this module to one page.

    Handles the constructs the renderers emit — ``#``/``##`` headings,
    tables, bullet lists, paragraphs — which keeps the HTML artifact
    dependency-free and byte-stable.
    """
    body: List[str] = []
    in_table = False
    for line in markdown.splitlines():
        if line.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-", ":", " "} and cell for cell in cells):
                continue
            tag = "td" if in_table else "th"
            if not in_table:
                body.append("<table>")
                in_table = True
            body.append("<tr>" + "".join(
                f"<{tag}>{_inline_html(cell)}</{tag}>"
                for cell in cells) + "</tr>")
            continue
        if in_table:
            body.append("</table>")
            in_table = False
        if line.startswith("# "):
            body.append(f"<h1>{_inline_html(line[2:])}</h1>")
        elif line.startswith("## "):
            body.append(f"<h2>{_inline_html(line[3:])}</h2>")
        elif line.startswith("* "):
            body.append(f"<p>{_inline_html(line[2:])}</p>")
        elif line:
            body.append(f"<p>{_inline_html(line)}</p>")
    if in_table:
        body.append("</table>")
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            + "\n".join(body) + "</body></html>\n")


def render_explain_html(doc: Dict) -> str:
    """Render an explain document as one self-contained HTML page."""
    return markdown_to_html(render_explain_markdown(doc),
                            "Run explain — B vs A")


def write_explain_report(path, doc: Dict) -> str:
    """Write the explain report; ``.html``/``.htm`` suffix selects HTML,
    ``.json`` the canonical document, anything else Markdown."""
    name = str(path).lower()
    if name.endswith((".html", ".htm")):
        text = render_explain_html(doc)
    elif name.endswith(".json"):
        text = json.dumps(doc, indent=1, sort_keys=True) + "\n"
    else:
        text = render_explain_markdown(doc)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


# -- single-run causal reports (repro.experiments --explain) ------------------


def _chain_lines(record: Dict, limit: int = 12) -> List[str]:
    """Render one worst-record causal chain as indented span lines."""
    lines = [f"  * `{record['op']}` track {record['track']}: "
             f"{_us(record['total_ns'])} µs total — components "
             + ", ".join(f"`{comp}`={_us(ns)}"
                         for comp, ns in sorted(record["components"].items()))]
    for holder, ns in sorted(record.get("blame", {}).items()):
        lines.append(f"    * blocked {_us(ns)} µs behind `{holder}`")
    chain = record.get("chain", [])
    for kind, t0, t1, args in chain[:limit]:
        holder = f" holder=`{args['holder']}`" if "holder" in args else ""
        lines.append(f"    * `{kind}` [{t0}, {t1}) "
                     f"{_us(t1 - t0)} µs{holder}")
    hidden = len(chain) - limit + record.get("chain_dropped", 0)
    if hidden > 0:
        lines.append(f"    * … {hidden} more spans")
    return lines


def render_causal_markdown(summary: Dict, title: str = "Causal forensics",
                           worst: int = 3) -> str:
    """Render one process's causal summary as Markdown.

    One section per labelled system: a per-op component table (exact ns
    sums — the conservation invariant makes each row a decomposition of
    that op's total) plus the ``worst`` slowest requests with their full
    causal chains and blame edges.  When several systems were captured
    (e.g. the noisy-neighbor variants), each subsequent system is also
    diffed against the first, reusing the explain ranking.
    """
    out: List[str] = [
        f"# {title}", "",
        f"{summary.get('records', 0)} requests decomposed, "
        f"{summary.get('violations', 0)} conservation violations "
        "(must be 0).", ""]
    systems = summary.get("systems", [])
    for system in systems:
        out += [f"## System `{system['label']}`", ""]
        for op, entry in sorted(system.get("ops", {}).items()):
            mean = entry["total_ns"] / entry["count"] if entry["count"] else 0
            out += [f"### Op `{op}` — {entry['count']} requests, "
                    f"mean {_us(mean)} µs", "",
                    "| component | total µs | mean µs | share |",
                    "|---|---:|---:|---:|"]
            comps = entry.get("components_ns", {})
            for comp in _component_order(comps):
                ns = comps[comp]
                share = ns / entry["total_ns"] if entry["total_ns"] else 0.0
                out.append(f"| `{comp}` | {_us(ns)} "
                           f"| {_us(ns / entry['count'])} "
                           f"| {share * 100:.1f}% |")
            out.append("")
            records = entry.get("worst", [])[:worst]
            if records:
                out.append(f"Worst {len(records)} of top-K tail capture:")
                out.append("")
                for record in records:
                    out.extend(_chain_lines(record))
                out.append("")
    if len(systems) > 1:
        base = systems[0]
        base_ops = merged_ops({"systems": [base]})
        for system in systems[1:]:
            out += [f"## Delta — `{system['label']}` vs `{base['label']}`",
                    ""]
            sys_ops = merged_ops({"systems": [system]})
            for op in sorted(set(base_ops) | set(sys_ops)):
                entry = _op_delta(op, base_ops.get(op), sys_ops.get(op))
                out += [
                    f"### Op `{op}`: Δmean {_signed_us(entry['d_mean_ns'])} "
                    f"µs, Δp99 {_signed_us(entry['d_p99_ns'])} µs", "",
                    "| component | Δmean µs | Δp99 µs |", "|---|---:|---:|"]
                for row in entry["components"]:
                    out.append(f"| `{row['component']}` "
                               f"| {_signed_us(row['d_mean_ns'])} "
                               f"| {_signed_us(row['d_p99_ns'])} |")
                out.append("")
    out.append("")
    return "\n".join(out)


def write_causal_report(path, summary: Dict,
                        title: str = "Causal forensics") -> str:
    """Write a single-run causal report (suffix selects the format)."""
    name = str(path).lower()
    markdown = render_causal_markdown(summary, title=title)
    if name.endswith((".html", ".htm")):
        text = markdown_to_html(markdown, title)
    elif name.endswith(".json"):
        text = json.dumps(summary, indent=1, sort_keys=True) + "\n"
    else:
        text = markdown
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text

"""Block-layer I/O schedulers (elevators).

* **NoopScheduler** — FIFO pass-through (what blk-mq effectively gives
  NVMe when no elevator is configured).
* **CfqScheduler** — Completely Fair Queuing as shipped in 4.4: strictly
  per-process service rounds with a shallow dispatch quantum; sorts each
  process's queue by sector to mimic the elevator sweep.
* **BfqScheduler** — the refined Budget Fair Queueing of 4.14: per-process
  queues with sector-count budgets, so large sequential streams keep the
  device busy while interactive queues still get turns.

Schedulers order *already-created* block requests; their CPU cost is
charged by the block layer from the kernel profile.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.common.iorequest import IORequest


class NoopScheduler:
    name = "noop"

    def __init__(self) -> None:
        self._queue: Deque[IORequest] = deque()

    def add(self, req: IORequest, stream_id: int = 0) -> None:
        del stream_id
        self._queue.append(req)

    def next(self, now: int = 0) -> Optional[IORequest]:
        del now
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class _PerStreamScheduler:
    """Shared machinery: one sorted queue per submitting stream."""

    def __init__(self) -> None:
        self._streams: "OrderedDict[int, Deque[IORequest]]" = OrderedDict()
        self._count = 0
        self._active: Optional[int] = None

    def add(self, req: IORequest, stream_id: int = 0) -> None:
        queue = self._streams.get(stream_id)
        if queue is None:
            queue = deque()
            self._streams[stream_id] = queue
        self._insert_sorted(queue, req)
        self._count += 1

    @staticmethod
    def _insert_sorted(queue: Deque[IORequest], req: IORequest) -> None:
        # elevator-style: keep each stream's queue sorted by start sector;
        # queues are short, so linear insertion is fine
        if not queue or queue[-1].slba <= req.slba:
            queue.append(req)
            return
        for i, other in enumerate(queue):
            if other.slba > req.slba:
                queue.insert(i, req)
                return

    def __len__(self) -> int:
        return self._count

    def _pop_from(self, stream_id: int) -> IORequest:
        queue = self._streams[stream_id]
        req = queue.popleft()
        if not queue:
            del self._streams[stream_id]
            if self._active == stream_id:
                self._active = None
        self._count -= 1
        return req

    def _rotate(self) -> Optional[int]:
        if not self._streams:
            return None
        stream_id, queue = next(iter(self._streams.items()))
        self._streams.move_to_end(stream_id)
        return stream_id


class CfqScheduler(_PerStreamScheduler):
    """CFQ: per-process service slices with sync idling.

    The behaviour that hurts SSDs (and drives Fig 12): when the active
    process's queue drains, CFQ *idles* for ``slice_idle`` anticipating
    another nearby request from the same process, instead of dispatching
    from other queues — a policy tuned for spinning-disk seek avoidance
    that strangles a parallel device.
    """

    name = "cfq"

    def __init__(self, quantum: int = 4,
                 slice_idle_ns: int = 50_000) -> None:
        super().__init__()
        self.quantum = quantum
        self.slice_idle_ns = slice_idle_ns
        self._served_in_slice = 0
        self.idle_until = 0

    def _serve_active(self, stream: int, now: int) -> IORequest:
        req = self._pop_from(stream)
        self._served_in_slice += 1
        if stream not in self._streams:
            # queue drained: anticipate the process's next request
            self.idle_until = now + self.slice_idle_ns
            self._active = stream   # keep ownership through the idle window
        return req

    def next(self, now: int = 0) -> Optional[IORequest]:
        if self._count == 0:
            return None
        active = self._active
        if active is not None and active in self._streams \
                and self._served_in_slice < self.quantum:
            return self._serve_active(active, now)
        if active is not None and active not in self._streams \
                and now < self.idle_until:
            return None    # idling on the drained sync queue
        self._active = self._rotate()
        self._served_in_slice = 0
        if self._active is None:
            return None
        return self._serve_active(self._active, now)


class BfqScheduler(_PerStreamScheduler):
    """Refined BFQ: budgets measured in sectors, not request counts."""

    name = "bfq"

    def __init__(self, budget_sectors: int = 2048) -> None:
        super().__init__()
        self.budget_sectors = budget_sectors
        self._budget_left = 0

    def next(self, now: int = 0) -> Optional[IORequest]:
        del now
        if self._count == 0:
            return None
        if (self._active is None or self._active not in self._streams
                or self._budget_left <= 0):
            self._active = self._rotate()
            self._budget_left = self.budget_sectors
        if self._active is None:
            return None
        req = self._pop_from(self._active)
        self._budget_left -= req.nsectors
        return req


def make_scheduler(name: str):
    table = {"noop": NoopScheduler, "cfq": CfqScheduler, "bfq": BfqScheduler}
    try:
        return table[name]()
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}") from None

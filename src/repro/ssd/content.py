"""Content store: the actual bytes living on flash pages.

When data emulation is enabled the device keeps real page payloads keyed
by physical page number, so end-to-end integrity (host buffer -> DMA ->
internal DRAM -> flash -> back) is checkable.  GC migrations copy
content; erases drop it.  Disabled, every call is a cheap no-op and the
simulation is timing-only.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ssd.storage.address import AddressMapper


class ContentStore:
    def __init__(self, enabled: bool, page_size: int) -> None:
        self.enabled = enabled
        self.page_size = page_size
        self._pages: Dict[int, bytes] = {}

    def write(self, ppn: int, data: Optional[bytes]) -> None:
        if not self.enabled:
            return
        if data is None:
            data = bytes(self.page_size)
        if len(data) != self.page_size:
            raise ValueError(
                f"content must be exactly one page ({self.page_size} B), "
                f"got {len(data)} B")
        self._pages[ppn] = data

    def read(self, ppn: int) -> Optional[bytes]:
        if not self.enabled:
            return None
        return self._pages.get(ppn)

    def move(self, old_ppn: int, new_ppn: int) -> None:
        if not self.enabled:
            return
        data = self._pages.get(old_ppn)
        if data is not None:
            self._pages[new_ppn] = data

    def erase_block(self, mapper: AddressMapper, unit: int, block: int,
                    pages_per_block: int) -> None:
        if not self.enabled:
            return
        first = mapper.ppn_from_unit(unit, block, 0)
        for ppn in range(first, first + pages_per_block):
            self._pages.pop(ppn, None)

    def __len__(self) -> int:
        return len(self._pages)

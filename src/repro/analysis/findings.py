"""Findings and suppressions for the simlint static analyzer.

A :class:`Finding` is one rule violation at one source location.  Rules
may be silenced per line with an inline comment that **must** carry a
written reason::

    lock.acquire()  # simlint: disable=SIM106 -- refcounted; release() is the pair

Several rule IDs may be listed, comma-separated.  A suppression without
a reason is itself reported (as ``SIM100``) and cannot be suppressed —
the whole point is that every exception to a simulation invariant is
documented where it lives (docs/ANALYSIS.md).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: rule reserved for malformed/bare suppressions; never suppressible
META_RULE = "SIM100"

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``witness`` is the dataflow evidence chain for whole-project
    findings (unit origins, taint call paths, lock-cycle acquire
    sites), one hop per entry; empty for per-file findings.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""
    witness: Tuple[str, ...] = ()

    def format(self) -> str:
        """Render as a conventional ``path:line:col: RULE message`` line."""
        tail = f"  [suppressed: {self.reason}]" if self.suppressed else ""
        where = "".join(f"\n    witness: {hop}" for hop in self.witness)
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{tail}{where}")


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# simlint: disable=...`` comment on one line."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "ALL" in self.rules


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract per-line suppressions from ``source``.

    Tokenizes so only *real* comments count — a directive quoted inside
    a docstring (like the ones in this module) is documentation, not a
    suppression.  Falls back to a raw line scan if the file does not
    tokenize, so a half-broken file still honours its directives.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):
        comments = [(lineno, text) for lineno, text
                    in enumerate(source.splitlines(), start=1)
                    if "#" in text]
    found: Dict[int, Suppression] = {}
    for lineno, text in comments:
        if "simlint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(r.strip().upper()
                      for r in match.group("rules").split(",") if r.strip())
        reason = (match.group("reason") or "").strip()
        found[lineno] = Suppression(lineno, rules, reason)
    return found


@dataclass
class FindingSet:
    """Accumulated findings for one lint run, with summary helpers."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0

"""Media failure injection: ECC read retries and bad-block retirement."""

import random

import pytest

from repro.sim import Simulator
from repro.ssd.config import CacheConfig, FTLConfig, NandReliability
from repro.ssd.device import SSD

from tests.conftest import tiny_ssd_config


def build(sim, reliability, **overrides):
    config = tiny_ssd_config(reliability=reliability, **overrides)
    return SSD(sim, config, data_emulation=True)


class TestReadRetries:
    def test_retries_occur_and_preserve_data(self, sim):
        ssd = build(sim, NandReliability(read_retry_probability=0.3, seed=7),
                    cache=CacheConfig(readahead=False))
        data = bytes(range(256)) * 8

        def scenario():
            yield from ssd.write(0, 4, data)
            yield from ssd.flush()
            # evict so the read really hits flash
            ssd.icl._lines.clear()
            got = yield from ssd.read(0, 4)
            return got

        # read enough pages for a 30% retry rate to fire
        got = sim.run_process(scenario())
        assert got == data
        # issue many more flash reads to observe retries statistically
        def more_reads():
            for i in range(50):
                ssd.icl._lines.clear()
                yield from ssd.read(0, 4)

        sim.run_process(more_reads())
        assert ssd.backend.read_retries > 0
        assert ssd.smart_report()["read_retries"] == ssd.backend.read_retries

    def test_retries_cost_extra_latency(self):
        def mean_read_ns(prob):
            sim = Simulator()
            ssd = build(sim, NandReliability(read_retry_probability=prob,
                                             seed=11),
                        cache=CacheConfig(readahead=False, enabled=False))

            def scenario():
                yield from ssd.write(0, 4)
                start = sim.now
                for _ in range(30):
                    yield from ssd.read(0, 4)
                return (sim.now - start) / 30

            return sim.run_process(scenario())

        assert mean_read_ns(0.9) > mean_read_ns(0.0)

    def test_retry_cap_respected(self, sim):
        ssd = build(sim, NandReliability(read_retry_probability=1.0,
                                         max_read_retries=2, seed=3),
                    cache=CacheConfig(enabled=False))

        def scenario():
            yield from ssd.write(0, 4)
            yield from ssd.read(0, 4)

        sim.run_process(scenario())
        # with p=1.0 every read burns exactly max_read_retries retries
        assert ssd.backend.read_retries <= \
            2 * (ssd.backend.reads_issued + 1)


class TestBadBlockRetirement:
    def test_failed_erases_retire_blocks(self, sim):
        ssd = build(sim, NandReliability(erase_fail_probability=0.5, seed=5),
                    ftl=FTLConfig(overprovision=0.25,
                                  gc_threshold_free_blocks=1))
        rng = random.Random(2)
        pages = ssd.config.logical_pages
        spp = ssd.config.geometry.page_size // 512
        shadow = {}

        def scenario():
            # churn half the space until a retirement happens, then stop
            # (continuing would spiral GC on the shrunken device)
            for round_no in range(4):
                for _ in range(pages // 2):
                    page = rng.randrange(pages // 2)
                    data = bytes([round_no & 0xFF]) * (spp * 512)
                    shadow[page] = data
                    yield from ssd.write(page * spp, spp, data)
                    if ssd.ftl.retired_blocks > 0:
                        break
                yield from ssd.flush()
                if ssd.ftl.retired_blocks > 0:
                    break
            # integrity must survive retirement
            for page, expected in sorted(shadow.items()):
                got = yield from ssd.read(page * spp, spp)
                assert got == expected, f"page {page} corrupted"

        sim.run_process(scenario())
        assert ssd.ftl.retired_blocks > 0
        assert ssd.smart_report()["retired_blocks"] == ssd.ftl.retired_blocks
        assert ssd.ftl.allocator.total_retired() == ssd.ftl.retired_blocks

    def test_retired_blocks_never_reallocated(self, sim):
        ssd = build(sim, NandReliability(erase_fail_probability=1.0, seed=9),
                    ftl=FTLConfig(overprovision=0.25,
                                  gc_threshold_free_blocks=1))
        allocator = ssd.ftl.allocator
        allocator.retire_block(0, 3)
        seen = set()
        ppb = ssd.config.geometry.pages_per_block
        for _ in range(ppb * (ssd.config.geometry.blocks_per_plane - 1)):
            ppn = allocator.allocate(0, now=0)
            seen.add(ssd.array.mapper.block_of_ppn(ppn))
        assert 3 not in seen

    def test_wear_accelerates_failures(self):
        rel = NandReliability(read_retry_probability=0.01,
                              wear_acceleration=50.0, seed=1)
        sim = Simulator()
        ssd = build(sim, rel)
        fresh = ssd.backend._wear_factor(0, 0)
        ssd.array.block(0, 0).erase_count = 2000
        worn = ssd.backend._wear_factor(0, 0)
        assert worn > fresh

    def test_ocssd_offline_chunks_reported(self, sim, tiny_config):
        from repro.core.system import FullSystem
        from repro.interfaces.ocssd.geometry import ChunkState
        config = tiny_config.with_overrides(
            reliability=NandReliability(erase_fail_probability=1.0, seed=4))
        system = FullSystem(device=config, interface="ocssd")

        def scenario():
            # force an erase through the vector interface
            ssd = system.ssd
            for page in range(ssd.config.geometry.pages_per_block):
                ssd.array.program_ppn(page, now=0)
                ssd.array.invalidate_ppn(page)
            ok = yield from system.controller.vector_erase(0, 0)
            return ok

        ok = system.run_process(scenario())
        assert not ok
        states = [d.state for d in system.controller.report_chunks(0)]
        assert ChunkState.OFFLINE in states

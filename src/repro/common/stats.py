"""Shared statistics helpers.

One home for the linear-interpolated percentile convention used
throughout the repo (recorders, exporters, tests), so the math cannot
drift between copies.  The convention matches ``numpy.percentile``'s
default (``linear`` interpolation): rank ``(p / 100) * (n - 1)`` over a
sorted sample list, interpolating between the two nearest order
statistics.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def percentile_sorted(ordered: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample sequence.

    ``p`` is in [0, 100]; an empty sequence yields 0.0.  ``p=0`` returns
    the minimum, ``p=100`` the maximum, and a single sample is returned
    for every ``p``.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not ordered:
        return 0.0
    rank = (p / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    frac = rank - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


def percentile_exact(samples: Sequence[float], p: float) -> float:
    """Percentile of an *unsorted* sample sequence (sorts a copy).

    Convenience wrapper over :func:`percentile_sorted` for callers that
    hold raw sample lists; sort once yourself if you need several
    percentiles of the same data.
    """
    return percentile_sorted(sorted(samples), p)


def percentiles_sorted(ordered: Sequence[float],
                       ps: Sequence[float]) -> List[float]:
    """Several percentiles of one pre-sorted sequence, in one pass."""
    return [percentile_sorted(ordered, p) for p in ps]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when every tenant gets an equal
    share, ``1/n`` when one tenant gets everything.  An empty or
    all-zero sequence yields 0.0.
    """
    if not values:
        return 0.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares == 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)

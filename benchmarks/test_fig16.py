"""Figure 16: simulation speed comparison."""

from repro.experiments import fig16_simspeed as experiment

from benchmarks.conftest import run_experiment


def test_fig16_simulation_speed(benchmark):
    result = run_experiment(benchmark, experiment)
    sims = result["simulators"]
    # detail costs events: the full system processes far more events per
    # I/O than any standalone replayer (the paper's gem5+Amber panel)
    assert sims["amber-fullsystem"]["events"] > \
        sims["amber-standalone"]["events"]
    for name in ("flashsim", "ssd-extension", "ssdsim", "mqsim"):
        assert sims["amber-fullsystem"]["events"] > sims[name]["events"], name
    # every simulator actually ran
    for name, data in sims.items():
        assert data["wall_seconds"] > 0, name
        assert data["events"] > 0, name

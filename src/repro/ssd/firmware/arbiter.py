"""Pluggable submission-queue arbitration for the Host Interface Layer.

NVMe exposes many submission queues to the host; the device decides
which queue to fetch from next.  This module isolates that decision
behind a small :class:`Arbiter` interface so policies are swappable via
``HILConfig.arbitration`` and testable in isolation (the hypothesis
battery in ``tests/test_qos_properties.py`` drives arbiters directly,
without a simulator).

Four disciplines ship:

* ``fifo`` — strict global arrival order (oldest ``cmd_id`` wins);
  models h-type single-queue storage (SATA/UFS).
* ``rr``  — round-robin over the currently backlogged queues; the NVMe
  baseline arbitration.
* ``wrr`` — NVMe weighted round-robin over *priority classes*
  (``DeviceCommand.priority``): a command's effective age is
  ``cmd_id / weight(class)``, so high classes jump the line
  proportionally to their configured weight.
* ``wfq`` — start-time fair queueing over *queues* (tenants): each
  queue accrues virtual service time inversely proportional to its
  ``HILConfig.qos_weights`` entry, giving weighted max-min fairness in
  sectors served regardless of request size mix.

Every selection funnels through :meth:`Arbiter.grant`, which also
counts per-queue grants — the measurement surface the fairness tests
and per-tenant metrics build on.

The ``fifo``/``rr``/``wrr`` implementations reproduce the decision
sequences of the pre-refactor inline code exactly (including tie-break
and cursor semantics), so existing golden digests stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Deque, Dict, List, Mapping

from repro.ssd.config import HILConfig
from repro.ssd.firmware.requests import DeviceCommand

#: a queue map as the HIL maintains it: queue id -> backlog of commands
QueueMap = Mapping[int, "Deque[DeviceCommand]"]


class Arbiter:
    """Base class: selection policy over backlogged submission queues."""

    #: registry name, set by subclasses
    name = "base"

    def __init__(self, config: HILConfig) -> None:
        self.config = config
        #: per-queue grant counters (queue id -> commands granted)
        self.grants: Dict[int, int] = {}

    def select(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Pick the next queue to serve from ``queue_ids`` (all backlogged).

        ``queue_ids`` is never empty and preserves the HIL's stable
        queue-creation order; every listed queue has at least one
        command.  Subclasses must be deterministic and side-effect-free
        except for their own bookkeeping.
        """
        raise NotImplementedError

    def grant(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Select a queue and account the grant; the HIL's entry point."""
        qid = self.select(queues, queue_ids)
        self.grants[qid] = self.grants.get(qid, 0) + 1
        return qid

    def total_grants(self) -> int:
        """Commands granted so far, across all queues."""
        return sum(self.grants.values())


class FifoArbiter(Arbiter):
    """Strict arrival order: the globally oldest command wins."""

    name = "fifo"

    def select(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Queue whose head carries the smallest ``cmd_id``."""
        return min(queue_ids, key=lambda qid: queues[qid][0].cmd_id)


class RoundRobinArbiter(Arbiter):
    """Cycle a cursor over whichever queues are currently backlogged."""

    name = "rr"

    def __init__(self, config: HILConfig) -> None:
        super().__init__(config)
        self._cursor = 0

    def select(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Advance the cursor, then index into the backlogged set."""
        self._cursor += 1
        return queue_ids[self._cursor % len(queue_ids)]


class WeightedRoundRobinArbiter(Arbiter):
    """NVMe WRR: priority classes get proportionally more turns.

    Each head command's *effective age* is ``cmd_id / weight(class)``
    with ``weight(class) = wrr_weights[min(priority, len - 1)]``; the
    smallest effective age wins (first queue listed wins ties).  Under
    saturation with interleaved arrivals, grant shares converge to the
    class weight ratios (property-tested).
    """

    name = "wrr"

    def select(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Queue whose head has the smallest weighted effective age."""
        weights = self.config.wrr_weights
        best = None
        for qid in queue_ids:
            head = queues[qid][0]
            cls = min(head.priority, len(weights) - 1)
            score = head.cmd_id / max(1, weights[cls])
            if best is None or score < best[0]:
                best = (score, qid)
        return best[1]


class WfqArbiter(Arbiter):
    """Start-time fair queueing (SFQ) over submission queues.

    Classic virtual-time WFQ approximation: queue ``q`` serving a head
    command of ``s`` sectors is stamped with a finish tag
    ``F(q) = max(V, F_prev(q)) + s / weight(q)`` and the smallest tag is
    served (smallest queue id on ties); the virtual clock ``V`` advances
    to the served command's start tag.  Weights come from
    ``HILConfig.qos_weights`` indexed by ``queue_id - 1`` (missing or
    non-positive entries default to 1), so tenant N's share of device
    *sectors* — not just command slots — tracks its weight even when
    tenants issue different request sizes.  An idle queue's tag is reset
    against ``V`` when it backs up again, so sleeping never banks credit
    (no starvation of busy queues by a returning one).
    """

    name = "wfq"

    def __init__(self, config: HILConfig) -> None:
        super().__init__(config)
        self._vtime = 0.0
        self._finish: Dict[int, float] = {}
        #: current head's stamped tags per queue: qid -> (cmd_id, start, finish)
        self._head_tags: Dict[int, tuple] = {}

    def _weight(self, qid: int) -> int:
        """Configured weight for a queue id (1-indexed; default 1)."""
        weights = self.config.qos_weights
        index = qid - 1
        if 0 <= index < len(weights) and weights[index] > 0:
            return weights[index]
        return 1

    def select(self, queues: QueueMap, queue_ids: List[int]) -> int:
        """Serve the backlogged queue with the smallest finish tag.

        Tags are stamped *once*, when a command first reaches the head
        of its queue (the SFQ arrival stamp) — recomputing them against
        the advancing virtual clock on every selection would let a
        heavy queue outrun a waiting one forever (starvation).
        """
        best = None
        for qid in queue_ids:
            head = queues[qid][0]
            tag = self._head_tags.get(qid)
            if tag is None or tag[0] != head.cmd_id:
                start = max(self._vtime, self._finish.get(qid, 0.0))
                finish = start + max(1, head.nsectors) / self._weight(qid)
                tag = (head.cmd_id, start, finish)
                self._head_tags[qid] = tag
            if best is None or (tag[2], qid) < (best[0], best[2]):
                best = (tag[2], tag[1], qid)
        finish, start, qid = best
        self._finish[qid] = finish
        self._vtime = start
        del self._head_tags[qid]
        return qid


#: arbitration policy name -> arbiter factory
ARBITERS: Dict[str, Callable[[HILConfig], Arbiter]] = {
    "fifo": FifoArbiter,
    "rr": RoundRobinArbiter,
    "wrr": WeightedRoundRobinArbiter,
    "wfq": WfqArbiter,
}


def make_arbiter(config: HILConfig) -> Arbiter:
    """Instantiate the arbiter named by ``config.arbitration``."""
    try:
        factory = ARBITERS[config.arbitration]
    except KeyError:
        raise ValueError(f"unknown arbitration {config.arbitration!r}; "
                         f"choose from {sorted(ARBITERS)}") from None
    return factory(config)

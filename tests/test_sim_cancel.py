"""Timeout cancellation: lazy tombstones in the event heap.

A cancelled timeout must never fire, must never count toward
``events_processed`` (the simulation-speed metric golden tests pin), and
must not require a heap rebuild — the engine drops tombstones lazily
when they surface at the head of the queue.
"""

import pytest

from repro.sim import Simulator
from repro.sim.engine import EmptySchedule


@pytest.fixture
def sim():
    return Simulator()


class TestCancelBasics:
    def test_cancelled_timeout_never_fires(self, sim):
        fired = []
        timeout = sim.timeout(50)
        timeout.add_callback(lambda ev: fired.append(sim.now))
        timeout.cancel()
        sim.run()
        assert fired == []
        assert timeout.cancelled
        assert not timeout.processed

    def test_cancel_is_idempotent(self, sim):
        timeout = sim.timeout(10)
        timeout.cancel()
        timeout.cancel()
        sim.run()
        assert timeout.cancelled

    def test_cancel_after_processing_raises(self, sim):
        timeout = sim.timeout(10)
        sim.run()
        assert timeout.processed
        with pytest.raises(RuntimeError, match="processed"):
            timeout.cancel()

    def test_other_events_unaffected(self, sim):
        order = []
        doomed = sim.timeout(20)
        doomed.add_callback(lambda ev: order.append("doomed"))
        sim.timeout(10).add_callback(lambda ev: order.append("early"))
        sim.timeout(30).add_callback(lambda ev: order.append("late"))
        doomed.cancel()
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 30


class TestCancelAccounting:
    def test_cancel_storm_does_not_grow_events_processed(self, sim):
        """Regression: tombstones must not inflate the speed metric."""
        sim.timeout(5)
        storm = [sim.timeout(i % 97 + 1) for i in range(500)]
        for timeout in storm:
            timeout.cancel()
        sim.timeout(200)
        sim.run()
        # only the two live timeouts were processed
        assert sim.events_processed == 2
        assert sim.now == 200

    def test_clock_never_advances_to_cancelled_instant(self, sim):
        last = sim.timeout(10)
        doomed = sim.timeout(99)
        doomed.cancel()
        sim.run()
        assert sim.now == 10
        assert last.processed

    def test_waiting_process_is_not_resumed(self, sim):
        """A process waiting on a cancelled timeout simply never resumes."""
        reached = []

        def proc():
            yield sim.timeout(40)
            reached.append(True)

        process = sim.process(proc())
        # first step runs the bootstrap; the process parks on the timeout
        sim.step()
        process._waiting_on.cancel()
        sim.run()
        assert reached == []
        assert process.is_alive


class TestCancelHeapBehaviour:
    def test_peek_purges_tombstoned_heads(self, sim):
        head = sim.timeout(1)
        live = sim.timeout(50)
        head.cancel()
        assert sim.peek() == 50
        sim.run()
        assert live.processed

    def test_peek_all_cancelled_is_empty(self, sim):
        for delay in (1, 2, 3):
            sim.timeout(delay).cancel()
        assert sim.peek() is None

    def test_step_skips_tombstones_without_counting(self, sim):
        sim.timeout(1).cancel()
        sim.timeout(2)
        sim.step()
        assert sim.now == 2
        assert sim.events_processed == 1

    def test_step_on_all_cancelled_raises_empty(self, sim):
        sim.timeout(1).cancel()
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_run_process_skips_tombstones(self, sim):
        for i in range(20):
            sim.timeout(i + 1).cancel()

        def proc():
            yield sim.timeout(100)
            return "done"

        assert sim.run_process(proc()) == "done"
        assert sim.now == 100
        # bootstrap + timeout + process completion
        assert sim.events_processed == 3

"""SIM107 fixture: mutable defaults shared across calls and simulators."""

from collections import defaultdict


def run_batch(jobs=[]):
    jobs.append("warmup")
    return jobs


def build_stats(counters=defaultdict(int), *, labels={}):
    return counters, labels

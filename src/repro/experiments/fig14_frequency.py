"""Figure 14: host CPU frequency sweep on the fastest SSD (Z-SSD).

Measures 4 KB random-read bandwidth at three levels as the host clock
scales 2 -> 8 GHz:

* **device-level** — a closed loop directly against the SSD model (no
  host, no interface): the raw capability of the storage complex;
* **interface-level** — through the NVMe protocol and DMA engine but
  with a functional (atomic) host CPU, i.e. protocol management cost
  without kernel execution;
* **user-level** — the full stack: FIO, syscalls, block layer, driver.

The paper: a 2 GHz kernel slashes device-level performance by 41%;
8 GHz still loses 29%.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_series
from repro.common.units import GHZ, SEC
from repro.core import presets
from repro.core.fio import FioJob
from repro.core.system import FullSystem
from repro.host.cpu import CpuModel
from repro.host.platform import pc_platform
from repro.sim import Simulator
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand
from repro.common.iorequest import IOKind

FREQUENCIES = [2, 4, 6, 8]   # GHz


def _device_level(n_ios: int, depth: int = 32, bs: int = 4096) -> float:
    """Closed loop straight at SSD.submit — no host in the way."""
    sim = Simulator()
    ssd = SSD(sim, presets.zssd())
    ssd.precondition_sequential()
    import random
    rng = random.Random(17)
    sectors = bs // 512
    region = ssd.config.logical_sectors - sectors
    state = {"done": 0, "bytes": 0}

    def slot():
        while state["done"] < n_ios:
            slba = rng.randrange(region // sectors) * sectors
            cmd = DeviceCommand(IOKind.READ, slba, sectors)
            yield ssd.submit(cmd)
            state["done"] += 1
            state["bytes"] += sectors * 512

    procs = [sim.process(slot()) for _ in range(depth)]

    def waiter():
        for proc in procs:
            yield proc

    sim.run_process(waiter())
    return (state["bytes"] / (1 << 20)) / (sim.now / SEC)


def _system_level(freq_ghz: int, n_ios: int, functional_cpu: bool,
                  depth: int = 32, bs: int = 4096) -> float:
    platform = pc_platform(frequency=int(freq_ghz * GHZ))
    system = FullSystem(
        device=presets.zssd(), interface="nvme", platform=platform,
        cpu_model=CpuModel.ATOMIC if functional_cpu else None)
    system.precondition()
    res = system.run_fio(FioJob(rw="randread", bs=bs, iodepth=depth,
                                total_ios=n_ios))
    return res.bandwidth_mbps


def run(quick: bool = True, n_ios=None, freqs=None) -> Dict:
    """``n_ios``/``freqs`` shrink the sweep for the golden small configs."""
    n_ios = n_ios or (300 if quick else 1200)
    freqs = freqs or ([2, 8] if quick else FREQUENCIES)
    device = _device_level(n_ios)
    interface = _system_level(4, n_ios, functional_cpu=True)
    user = {f: _system_level(f, n_ios, functional_cpu=False) for f in freqs}
    results = {
        "frequencies_ghz": freqs,
        "device_level_mbps": device,
        "interface_level_mbps": interface,
        "user_level_mbps": user,
        "degradation": {f: 1.0 - user[f] / device for f in freqs},
    }
    return results


def render(results: Dict) -> str:
    series = {
        "device": {f: round(results["device_level_mbps"])
                   for f in results["frequencies_ghz"]},
        "interface": {f: round(results["interface_level_mbps"])
                      for f in results["frequencies_ghz"]},
        "user": {f: round(v) for f, v in results["user_level_mbps"].items()},
    }
    table = format_series(series, "GHz",
                          "Fig 14: bandwidth by level vs host frequency")
    degr = ", ".join(f"{f}GHz: {d * 100:.0f}%"
                     for f, d in results["degradation"].items())
    return (f"{table}\n\nuser-level loss vs device-level: {degr} "
            "(paper: 41% at 2GHz, 29% at 8GHz)")

"""simlint over the real codebase: the self-check CI gate, the engine
clone-consistency contract, and seeded-mutation proofs that the gate
actually catches the regressions it exists for (docs/ANALYSIS.md).
"""

import shutil
import time
from pathlib import Path

import repro
from repro.analysis import lint_paths, lint_source
from repro.analysis.baseline import Baseline
from repro.analysis.clones import compare_clones

PACKAGE_DIR = Path(repro.__file__).parent
ENGINE = PACKAGE_DIR / "sim" / "engine.py"
EVENTS = PACKAGE_DIR / "sim" / "events.py"
SCENARIOS = PACKAGE_DIR / "bench" / "scenarios.py"
BACKEND = PACKAGE_DIR / "ssd" / "storage" / "backend.py"
MODELS = PACKAGE_DIR / "baselines" / "models.py"

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "analysis-baseline.txt"


def _replace_nth(text, old, new, occurrence):
    """Replace only the ``occurrence``-th (1-based) hit of ``old``."""
    parts = text.split(old)
    assert len(parts) > occurrence, \
        f"needle occurs {len(parts) - 1} time(s), wanted #{occurrence}"
    return old.join(parts[:occurrence]) + new + old.join(parts[occurrence:])


# -- the gate itself ----------------------------------------------------------

class TestSelfCheck:
    def test_package_lints_clean(self):
        """`python -m repro.analysis lint src/repro` must exit 0."""
        result = lint_paths([str(PACKAGE_DIR)])
        assert result.unsuppressed == [], "\n".join(
            f.format() for f in result.unsuppressed)

    def test_every_suppression_carries_a_reason(self):
        result = lint_paths([str(PACKAGE_DIR)])
        assert result.suppressed, "expected documented suppressions to exist"
        for finding in result.suppressed:
            assert finding.reason, finding.format()

    def test_engine_clones_are_consistent(self):
        divergences = compare_clones(ENGINE.read_text(), EVENTS.read_text())
        assert divergences == [], "\n".join(
            f"{d.method}:{d.lineno}: {d.message}" for d in divergences)

    def test_extended_gate_is_clean_and_within_budget(self):
        """The CI gate — src/repro + tests + benchmarks under the
        adoption baseline — is clean, and a full-repo lint stays under
        its 10 s runtime budget (docs/ANALYSIS.md)."""
        t0 = time.perf_counter()  # simlint: disable=SIM101, SIM110 -- measuring the linter's own runtime budget; nothing simulated
        result = lint_paths(
            [str(PACKAGE_DIR), str(REPO_ROOT / "tests"),
             str(REPO_ROOT / "benchmarks")],
            baseline=Baseline.load(str(BASELINE)),
            exclude=("analysis_fixtures",))
        elapsed = time.perf_counter() - t0  # simlint: disable=SIM101, SIM110 -- measuring the linter's own runtime budget; nothing simulated
        assert result.unsuppressed == [], "\n".join(
            f.format() for f in result.unsuppressed)
        assert elapsed < 10.0, \
            f"full-repo lint took {elapsed:.1f}s; budget is 10s"


# -- seeded mutations: the gate catches what it claims to ---------------------

class TestSeededMutations:
    def test_inserted_wallclock_read_is_caught(self):
        """Splice a `time.time()` into the engine: SIM101 fires."""
        source = ENGINE.read_text().replace(
            "        self._now: int = 0\n",
            "        self._now: int = 0\n"
            "        import time\n"
            "        self._born = time.time()\n")
        findings = lint_source("engine_scratch.py", source)
        assert "SIM101" in {f.rule for f in findings if not f.suppressed}

    def test_unreleased_acquire_is_caught(self):
        """Undo the kernel_churn try/finally fix: SIM106 fires again."""
        source = SCENARIOS.read_text().replace(
            "            yield gate.acquire()\n"
            "            try:\n"
            "                yield sim.timeout(11)\n"
            "            finally:\n"
            "                gate.release()\n",
            "            yield gate.acquire()\n"
            "            yield sim.timeout(11)\n")
        assert "gate.release()" not in source  # the mutation really applied
        findings = lint_source("scenarios_scratch.py", source)
        assert "SIM106" in {f.rule for f in findings if not f.suppressed}

    def test_dropped_statement_in_one_clone_is_caught(self, tmp_path):
        """Delete `self._event_count += 1` from run() only: SIM108 fires.

        Occurrence 1 of the counter line lives in step(), 2 in run(),
        3 in run_process() — mutating only #2 makes the clones drift.
        """
        mutated = _replace_nth(
            ENGINE.read_text(), "            self._event_count += 1\n",
            "", occurrence=2)
        (tmp_path / "engine.py").write_text(mutated)
        shutil.copy(EVENTS, tmp_path / "events.py")
        findings = lint_source(str(tmp_path / "engine.py"))
        sim108 = [f for f in findings
                  if f.rule == "SIM108" and not f.suppressed]
        assert sim108, "clone drift went undetected"
        assert any("run" in f.message for f in sim108)

    def test_reordered_statements_in_one_clone_are_caught(self, tmp_path):
        """Swap clock-advance and counter in run_process(): SIM108 fires."""
        mutated = _replace_nth(
            ENGINE.read_text(),
            "            self._now = when\n"
            "            self._event_count += 1\n",
            "            self._event_count += 1\n"
            "            self._now = when\n",
            occurrence=3)
        (tmp_path / "engine.py").write_text(mutated)
        shutil.copy(EVENTS, tmp_path / "events.py")
        findings = lint_source(str(tmp_path / "engine.py"))
        assert any(f.rule == "SIM108" and "run_process" in f.message
                   for f in findings if not f.suppressed)

    def test_statement_added_to_one_clone_is_caught(self, tmp_path):
        """A stray extra statement in run() only: SIM108 fires."""
        mutated = _replace_nth(
            ENGINE.read_text(), "            self._event_count += 1\n",
            "            self._event_count += 1\n"
            "            self._orphan_failures.clear()\n",
            occurrence=2)
        (tmp_path / "engine.py").write_text(mutated)
        shutil.copy(EVENTS, tmp_path / "events.py")
        findings = lint_source(str(tmp_path / "engine.py"))
        assert any(f.rule == "SIM108" for f in findings if not f.suppressed)

    def test_ns_plus_bytes_addition_is_caught(self):
        """Add a raw byte count to the command+transfer time in
        `_xfer_ns`: the unit lattice proves ns + bytes (SIM201)."""
        source = _replace_nth(
            BACKEND.read_text(),
            "nbytes, self.config.timing.channel_bandwidth)",
            "nbytes, self.config.timing.channel_bandwidth) + nbytes",
            occurrence=1)
        findings = lint_source(str(BACKEND), source)
        hits = [f for f in findings
                if f.rule == "SIM201" and not f.suppressed]
        assert hits, "ns + bytes addition went undetected"
        assert any("bytes" in hop for f in hits for hop in f.witness)

    def test_us_constant_swapped_for_ns_is_caught(self):
        """Swap `PROTOCOL_US * US` to `* NS` in the MQSim model: the
        value silently shrinks 1000x, and the conversion algebra flags
        the us-scale quantity entering ns arithmetic (SIM201)."""
        source = MODELS.read_text().replace(
            "yield self.sim.timeout(self.PROTOCOL_US * US)",
            "yield self.sim.timeout(self.PROTOCOL_US * NS)")
        assert "PROTOCOL_US * NS" in source  # the mutation really applied
        findings = lint_source(str(MODELS), source)
        assert any(f.rule == "SIM201" and not f.suppressed
                   for f in findings), "US-for-NS swap went undetected"

    def test_wallclock_through_two_helpers_is_caught(self):
        """Return `time.time()` through two helper layers into model
        state: the per-file rules see only the read; the taint pass
        reports the *store*, with the full call path (SIM210)."""
        source = BACKEND.read_text().replace(
            "    def _xfer_ns(self, nbytes: int) -> int:",
            "    def _stamp_low(self):\n"
            "        import time\n"
            "        return time.time()\n"
            "\n"
            "    def _stamp_mid(self):\n"
            "        return self._stamp_low()\n"
            "\n"
            "    def touch_stamp(self):\n"
            "        self.last_stamp = self._stamp_mid()\n"
            "\n"
            "    def _xfer_ns(self, nbytes: int) -> int:",
            1)
        findings = [f for f in lint_source(str(BACKEND), source)
                    if f.rule == "SIM210" and not f.suppressed]
        assert findings, "transitive wall-clock flow went undetected"
        witness = "\n".join(findings[0].witness)
        assert "_stamp_low" in witness and "_stamp_mid" in witness
        assert "last_stamp" in witness

    def test_inverted_acquire_order_is_caught(self):
        """Invert die/channel acquisition in `program_page`'s untraced
        path: the acquire-order graph gains a cycle against
        `read_page` (SIM220)."""
        source = BACKEND.read_text()
        # occurrence 2 of each acquire is program_page's untraced path
        source = _replace_nth(source, "yield die.acquire()",
                              "yield channel.acquire()  # mutated",
                              occurrence=2)
        source = _replace_nth(source, "yield channel.acquire()\n",
                              "yield die.acquire()\n", occurrence=2)
        findings = [f for f in lint_source(str(BACKEND), source)
                    if f.rule == "SIM220" and not f.suppressed]
        assert findings, "inverted lock order went undetected"
        assert "die_resource" in findings[0].message
        assert "channel_resource" in findings[0].message

    def test_renamed_local_alone_is_not_drift(self, tmp_path):
        """Renaming a loop local in run() is canonicalized away: clean."""
        source = ENGINE.read_text()
        mutated = _replace_nth(
            source, "        pop = heapq.heappop\n",
            "        popper = heapq.heappop\n", occurrence=1)
        mutated = _replace_nth(
            mutated, "            when, _seq, event = pop(queue)\n",
            "            when, _seq, event = popper(queue)\n", occurrence=1)
        (tmp_path / "engine.py").write_text(mutated)
        shutil.copy(EVENTS, tmp_path / "events.py")
        divergences = compare_clones(mutated, EVENTS.read_text())
        assert divergences == [], "\n".join(
            f"{d.method}:{d.lineno}: {d.message}" for d in divergences)

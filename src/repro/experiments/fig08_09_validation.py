"""Figures 8 & 9: Amber vs four real devices, bandwidth and latency vs
I/O depth, with per-device accuracy percentages.

Runs FIO at user level through the full system (the paper's methodology:
no trace replay) for each device preset and compares against the
digitized real-device curves.  Accuracy = 1 - |real - sim| / real,
averaged over the depth sweep.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_series, format_table
from repro.baselines.reference import REAL_DEVICES, accuracy, reference_at
from repro.experiments.common import (
    FULL_DEPTHS,
    QUICK_DEPTHS,
    build_system,
    run_pattern,
)
from repro.workloads.synthetic import PATTERN_RW


def run(quick: bool = True, devices=None) -> Dict:
    depths = QUICK_DEPTHS if quick else FULL_DEPTHS
    n_ios = 600 if quick else 2000
    devices = devices or list(REAL_DEVICES)
    results: Dict = {"depths": depths, "devices": {}}
    for device in devices:
        per_pattern: Dict = {}
        for pattern in PATTERN_RW:
            curve = {}
            for depth in depths:
                system = build_system(device)
                res = run_pattern(system, pattern, depth, total_ios=n_ios)
                real_bw = reference_at(device, pattern, depth)
                real_lat = reference_at(device, pattern, depth, "latency")
                curve[depth] = {
                    "bandwidth_mbps": res.bandwidth_mbps,
                    "latency_us": res.latency.mean_us(),
                    "real_bandwidth_mbps": real_bw,
                    "real_latency_us": real_lat,
                    "bandwidth_accuracy": accuracy(real_bw,
                                                   res.bandwidth_mbps),
                    "latency_accuracy": accuracy(real_lat,
                                                 res.latency.mean_us()),
                }
            per_pattern[pattern] = curve
        results["devices"][device] = per_pattern
    results["summary"] = _summarize(results)
    return results


def _summarize(results: Dict) -> Dict:
    summary: Dict = {}
    for device, per_pattern in results["devices"].items():
        bw_acc, lat_acc = [], []
        for curve in per_pattern.values():
            for point in curve.values():
                bw_acc.append(point["bandwidth_accuracy"])
                lat_acc.append(point["latency_accuracy"])
        summary[device] = {
            "bandwidth_accuracy": sum(bw_acc) / len(bw_acc),
            "latency_accuracy": sum(lat_acc) / len(lat_acc),
        }
    return summary


def render(results: Dict) -> str:
    blocks = []
    for device, per_pattern in results["devices"].items():
        for pattern, curve in per_pattern.items():
            series = {
                "amber": {d: round(v["bandwidth_mbps"]) for d, v in curve.items()},
                "real": {d: round(v["real_bandwidth_mbps"]) for d, v in curve.items()},
            }
            blocks.append(format_series(
                series, "depth", f"Fig 8 {device} {pattern} bandwidth MB/s"))
            lat = {
                "amber": {d: round(v["latency_us"], 1) for d, v in curve.items()},
                "real": {d: round(v["real_latency_us"], 1) for d, v in curve.items()},
            }
            blocks.append(format_series(
                lat, "depth", f"Fig 9 {device} {pattern} latency us"))
    rows = [[device,
             f"{s['bandwidth_accuracy'] * 100:.0f}%",
             f"{s['latency_accuracy'] * 100:.0f}%"]
            for device, s in results["summary"].items()]
    blocks.append(format_table(
        ["device", "bandwidth accuracy", "latency accuracy"], rows,
        "Validation accuracy summary (paper: 72-96% bw, 64-96% lat)"))
    return "\n\n".join(blocks)

"""The fleet runner: execute a sweep's jobs across worker processes.

Determinism contract (pinned by ``tests/test_fleet.py``):

* every job's RNG seed derives from its config hash
  (:func:`repro.fleet.spec.derive_seed`) — never from worker identity,
  scheduling order, pids or the clock — so a job computes the same
  result whichever worker runs it, whenever;
* results land in the content-addressed store keyed by hash, so
  completion order (which *does* vary with ``--jobs``) can never leak
  into the merged output — reports read the store in sorted-hash order;
* therefore a 1-worker and an N-worker run of the same spec produce
  byte-identical stores and byte-identical merged reports.

``resume=True`` skips any job whose hash already has a stored result,
which is also what makes a killed overnight sweep restartable: rerun
the same command and only the missing configurations execute.

Liveness sits *beside* that contract, never inside it: by default each
worker also appends lifecycle events to ``<store>/journal.ndjson``
(:mod:`repro.obs.journal`) so ``python -m repro.fleet watch`` can show
in-flight progress and a crashed worker is distinguishable from a
never-started job.  The journal is wall-clock-tainted by design and
excluded from the byte-identical store diff; the *result payloads* stay
bit-identical with journaling (and ``--profile``) on or off, which
``tests/test_fleet_watch.py`` pins.

This module is one of simlint's designated wall-clock modules (SIM110):
worker lifecycle stamps are exactly the wall-clock reads the journal
exists for.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.fleet.spec import Job, SweepSpec, derive_seed
from repro.fleet.store import ResultStore
from repro.obs import causal as _causal
from repro.obs import journal as _journal
from repro.obs import profiler as _profiler
from repro.obs import telemetry as _telemetry


@dataclass
class RunSummary:
    """What one ``run_sweep`` invocation planned, skipped and executed."""

    planned: int = 0
    skipped: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-ready counts plus the executed/skipped hash lists."""
        return {"planned": self.planned, "executed": sorted(self.executed),
                "skipped": sorted(self.skipped)}


def _flightrec_dumps(directory: Path) -> List[str]:
    """File names of flight-recorder post-mortems in ``directory``."""
    if not directory.is_dir():
        return []
    return sorted(p.name for p in directory.glob("flightrec-*.json"))


def run_one_job(job: Job,
                journal_path: Optional[Union[str, Path]] = None,
                heartbeat_s: float = 2.0,
                profile: bool = False,
                causal: bool = False) -> Tuple[str, Dict]:
    """Execute a single planned job; the unit of work a worker runs.

    Module-level (not a closure) so it pickles under any multiprocessing
    start method.  The scenario seed comes from the job's config hash —
    simlint's SIM109 rule guards this property for every worker entry
    point in the tree.

    With ``journal_path`` set, the job's lifecycle is appended to that
    NDJSON journal: ``job_started``, throttled ``heartbeat`` /
    ``epoch_sampled`` pairs while the simulator advances (telemetry is
    armed for the duration if it wasn't already — proven bit-identical,
    so the returned result is unchanged), then ``job_completed`` — or
    ``job_failed`` with the error and any ``flightrec-*.json``
    post-mortems the failure dumped beside the journal.  ``profile=True``
    additionally arms the wall-clock self-profiler and records the
    per-layer attribution in the ``job_completed`` event.

    ``causal=True`` arms per-request causal capture
    (:mod:`repro.obs.causal`) for the duration and embeds the causal
    summary under the result's ``"causal"`` key — the payload ``fleet
    explain`` diffs.  Capture never perturbs simulated results (spans
    live outside the event queue), so every *other* result field is
    byte-identical with it on or off; the stored document differs only
    by the added key.
    """
    from repro.fleet.scenarios import run_scenario
    seed = derive_seed(job.config_hash)
    if journal_path is None and not profile and not causal:
        return job.config_hash, run_scenario(job.params, seed)

    journal = (None if journal_path is None
               else _journal.RunJournal(journal_path))
    dump_dir = (None if journal is None else journal.path.parent)
    own_telemetry = journal is not None and not _telemetry.telemetry_enabled()
    own_profiler = profile and not _profiler.profiling_enabled()
    own_causal = causal and not _causal.causal_enabled()
    dumps_before = [] if dump_dir is None else _flightrec_dumps(dump_dir)
    try:
        if own_telemetry:
            _telemetry.enable_telemetry(dump_dir=str(dump_dir))
        if own_profiler:
            _profiler.enable_profiling()
        if causal:
            # (re)arm per job: clears any previous job's collectors so
            # the embedded summary covers exactly this simulation
            _causal.enable_causal()
        if journal is not None:
            _journal.begin_job(journal, job.config_hash,
                               heartbeat_s=heartbeat_s)
        try:
            result = run_scenario(job.params, seed)
            if causal and isinstance(result, dict):
                result = dict(result, causal=_causal.causal_summary())
        except BaseException as error:
            if journal is not None:
                new_dumps = [name for name
                             in _flightrec_dumps(dump_dir)  # type: ignore[arg-type]
                             if name not in dumps_before]
                if not new_dumps:
                    # failure escaped outside run_process (setup code,
                    # bad params): dump the post-mortem ourselves
                    for probe in _telemetry.probes()[-1:]:
                        path = probe.on_failure(error)
                        if path:
                            new_dumps.append(Path(path).name)
                _journal.end_job("job_failed", error=type(error).__name__,
                                 message=str(error), flightrec=new_dumps)
            raise
        if journal is not None:
            facts = {key: result[key]
                     for key in ("events_processed", "sim_time_ns")
                     if isinstance(result, dict) and key in result}
            if profile:
                doc = _profiler.attribution()
                facts["profile"] = {
                    name: round(entry["seconds"], 6)
                    for name, entry in sorted(doc["layers"].items())}
            _journal.end_job("job_completed", **facts)
        return job.config_hash, result
    finally:
        if journal is not None:
            _journal.end_job("job_failed", error="Interrupted",
                             message="worker exited without a terminal event")
        if own_causal:
            _causal.disable_causal()
        if own_profiler:
            _profiler.disable_profiling()
        if own_telemetry:
            _telemetry.disable_telemetry()


def run_sweep(spec: SweepSpec, store: ResultStore, jobs: int = 1,
              resume: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              journal: bool = True, heartbeat_s: float = 2.0,
              profile: bool = False, causal: bool = False) -> RunSummary:
    """Run every job of ``spec`` into ``store``; returns the summary.

    ``jobs=1`` executes inline in this process (no pool), in
    sorted-hash order.  ``jobs>1`` fans out over a
    ``ProcessPoolExecutor``; completion order is nondeterministic but
    harmless (see module doc).  ``resume=False`` re-executes and
    overwrites even configurations that already have results.

    ``journal=True`` (the default) streams per-job lifecycle events into
    ``<store>/journal.ndjson`` for ``watch``/``status --follow``;
    ``heartbeat_s`` throttles the in-flight heartbeats; ``profile=True``
    arms the wall-clock self-profiler per job and journals the
    per-layer attribution; ``causal=True`` embeds each job's causal
    latency decomposition in its stored result (``fleet explain``).
    None of these can perturb simulated results (see
    :func:`run_one_job`) — a causal store differs from a plain one only
    by the deterministic ``"causal"`` payload, and stays byte-identical
    across ``--jobs`` counts.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    journal_path = (_journal.journal_path_for(store.root)
                    if journal else None)
    summary = RunSummary()
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    summary.planned = len(planned)
    pending: List[Job] = []
    for job in planned:
        if resume and store.has(job.config_hash):
            summary.skipped.append(job.config_hash)
        else:
            pending.append(job)

    def note(message: str) -> None:
        """Forward a progress line to the caller's callback, if any."""
        if progress is not None:
            progress(message)

    note(f"{spec.name}: {summary.planned} planned, "
         f"{len(summary.skipped)} cached, {len(pending)} to run "
         f"({jobs} worker{'s' if jobs != 1 else ''})")

    if jobs == 1 or len(pending) <= 1:
        for job in pending:
            job_hash, result = run_one_job(job, journal_path=journal_path,
                                           heartbeat_s=heartbeat_s,
                                           profile=profile, causal=causal)
            store.put(job_hash, job.params, result)
            summary.executed.append(job_hash)
            note(f"done {job_hash[:12]} "
                 f"({len(summary.executed)}/{len(pending)})")
        return summary

    by_hash = {job.config_hash: job for job in pending}
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(run_one_job, job, journal_path,
                               heartbeat_s, profile, causal): job
                   for job in pending}
        for future in as_completed(futures):
            job_hash, result = future.result()
            store.put(job_hash, by_hash[job_hash].params, result)
            summary.executed.append(job_hash)
            note(f"done {job_hash[:12]} "
                 f"({len(summary.executed)}/{len(pending)})")
    return summary


def sweep_status(spec: SweepSpec, store: ResultStore) -> Dict:
    """Completion status of a spec against a store (for ``status``)."""
    planned = sorted(spec.expand(), key=lambda job: job.config_hash)
    done = [job.config_hash for job in planned if store.has(job.config_hash)]
    missing = [job.config_hash for job in planned
               if not store.has(job.config_hash)]
    return {"spec": spec.name, "planned": len(planned), "done": len(done),
            "missing": missing}

"""TRIM/deallocate path and SMART health reporting."""

import pytest

from repro.sim import Simulator
from repro.ssd.device import SSD

from tests.conftest import tiny_ssd_config


@pytest.fixture
def ssd(sim):
    return SSD(sim, tiny_ssd_config(), data_emulation=True)


class TestTrim:
    def test_trimmed_range_reads_as_zero(self, sim, ssd):
        data = bytes(range(256)) * 16   # 8 sectors

        def scenario():
            yield from ssd.write(0, 8, data)
            yield from ssd.flush()
            got = yield from ssd.read(0, 8)
            assert got == data
            yield from ssd.trim(0, 8)
            got = yield from ssd.read(0, 8)
            return got

        assert sim.run_process(scenario()) == bytes(8 * 512)
        assert ssd.ftl.trimmed_pages >= 1

    def test_trim_invalidates_physical_pages(self, sim, ssd):
        spp = ssd.config.geometry.page_size // 512

        def scenario():
            yield from ssd.write(0, 4 * spp)
            yield from ssd.flush()
            valid_before = ssd.array.valid_page_total()
            yield from ssd.trim(0, 4 * spp)
            return valid_before

        valid_before = sim.run_process(scenario())
        assert ssd.array.valid_page_total() < valid_before

    def test_trim_drops_dirty_cache(self, sim, ssd):
        def scenario():
            yield from ssd.write(0, 8)     # dirty in cache, never flushed
            yield from ssd.trim(0, 8)
            yield from ssd.flush()

        sim.run_process(scenario())
        # nothing programmed: the dirty data was deallocated before flush
        assert ssd.backend.programs_issued == 0

    def test_trim_unwritten_range_is_noop(self, sim, ssd):
        def scenario():
            yield from ssd.trim(100, 8)

        sim.run_process(scenario())
        assert ssd.ftl.trimmed_pages == 0

    def test_trim_out_of_range_rejected(self, sim, ssd):
        def scenario():
            yield from ssd.trim(ssd.config.logical_sectors - 1, 8)

        with pytest.raises(ValueError, match="capacity"):
            sim.run_process(scenario())

    def test_trim_through_nvme_dsm(self, tiny_config):
        from repro.core.system import FullSystem
        system = FullSystem(device=tiny_config, interface="nvme",
                            data_emulation=True)

        def scenario():
            data = FullSystem.pattern_data(0, 8)
            yield from system.write(0, 8, data)
            yield from system.trim(0, 8)
            got = yield from system.read(0, 8)
            return got

        assert system.run_process(scenario()) == bytes(8 * 512)

    def test_trimmed_blocks_become_cheap_gc_victims(self, sim, ssd):
        spp = ssd.config.geometry.page_size // 512
        pages = ssd.config.logical_pages

        def scenario():
            for page in range(pages // 2):
                yield from ssd.write(page * spp, spp)
            yield from ssd.flush()
            yield from ssd.trim(0, (pages // 2) * spp)

        sim.run_process(scenario())
        # every trimmed page is invalid: GC could reclaim without moves
        candidates = sum(len(ssd.ftl.allocator.gc_candidates(u))
                         for u in range(ssd.config.geometry.parallel_units))
        assert candidates > 0


class TestSmart:
    def test_smart_fields_track_activity(self, sim, ssd):
        spp = ssd.config.geometry.page_size // 512

        def scenario():
            for i in range(40):
                yield from ssd.write((i % 10) * spp, spp)
                yield from ssd.flush()

        sim.run_process(scenario())
        smart = ssd.smart_report()
        assert smart["host_writes_pages"] >= 40
        assert smart["media_writes_pages"] >= smart["host_writes_pages"]
        assert 0.0 <= smart["percentage_used"] <= 100.0
        assert smart["power_on_seconds"] > 0

    def test_fresh_device_is_unworn(self, sim, ssd):
        smart = ssd.smart_report()
        assert smart["average_erase_count"] == 0
        assert smart["percentage_used"] == 0.0
        assert smart["trimmed_pages"] == 0

    def test_tlc_wears_faster_than_mlc(self, sim):
        from repro.ssd.config import FlashTiming
        mlc = SSD(sim, tiny_ssd_config())
        tlc_config = tiny_ssd_config(timing=FlashTiming(bits_per_cell=3))
        tlc = SSD(Simulator(), tlc_config)
        for device in (mlc, tlc):
            for unit in range(device.config.geometry.parallel_units):
                device.array.block(unit, 0).erase_count = 50
        assert tlc.smart_report()["percentage_used"] > \
            mlc.smart_report()["percentage_used"]

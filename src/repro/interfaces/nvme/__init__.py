"""NVM Express: rich queues, doorbells, PRP/SGL, MSI-X (s-type storage)."""

from repro.interfaces.nvme.structures import (
    CompletionEntry,
    NvmeOpcode,
    SubmissionEntry,
)
from repro.interfaces.nvme.queues import QueuePair
from repro.interfaces.nvme.host import NvmeDriver
from repro.interfaces.nvme.controller import NvmeController

__all__ = [
    "NvmeOpcode",
    "SubmissionEntry",
    "CompletionEntry",
    "QueuePair",
    "NvmeDriver",
    "NvmeController",
]

"""Per-request causal latency forensics (:mod:`repro.obs.causal`) and
the differential explain layer (:mod:`repro.obs.diff`): the conservation
invariant (components sum exactly to end-to-end latency for *every*
request), bounded top-K tail capture with blame edges, bit-identical
results with capture on or off, and byte-deterministic explain reports
across fleet ``--jobs`` counts (``docs/OBSERVABILITY.md``)."""

import json

import pytest

from repro.experiments.golden import digest
from repro.fleet import ResultStore, SweepSpec, merge_results, run_sweep
from repro.fleet.report import render_markdown
from repro.fleet.runner import run_one_job
from repro.fleet.spec import Job, config_hash
from repro.obs import (
    CHAIN_CAP,
    COMPONENTS,
    CausalTracer,
    causal_enabled,
    causal_summary,
    component_of,
    disable_causal,
    enable_causal,
)
from repro.obs.causal import BLAME_KINDS
from repro.obs.diff import (
    explain,
    merged_ops,
    render_causal_markdown,
    render_explain_markdown,
    write_explain_report,
)
from repro.obs.tracer import Tracer


class _Clock:
    def __init__(self):
        self.now = 0


@pytest.fixture
def causal():
    """Arm process-wide causal capture for one test, always cleaning up."""
    enable_causal()
    yield
    disable_causal()


#: the tiny fio job every full-stack test here simulates
FIO_PARAMS = {"scenario": "fio", "preset": "intel750", "rw": "randread",
              "total_ios": 60, "iodepth": 4, "bs": 4096, "channels": 2}

#: two-config sweep used for the fleet-level determinism pins
TINY = SweepSpec(
    name="tiny-causal", scenario="fio",
    base={"preset": "intel750", "rw": "randread", "total_ios": 60,
          "iodepth": 4, "bs": 4096},
    axes={"channels": (2, 4)})


def _job(params):
    return Job(params=params, config_hash=config_hash(params))


# -- unit: the streaming self-time partition ----------------------------------


class TestConservation:
    def test_nested_spans_telescope_exactly(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 1, op="READ")
        clock.now = 10
        mid = tracer.begin("ftl.translate", 1)
        clock.now = 25
        leaf = tracer.begin("flash.read", 1)
        clock.now = 95
        tracer.end(leaf)
        clock.now = 100
        tracer.end(mid)
        clock.now = 130
        tracer.end(root)
        assert tracer.records == 1 and tracer.violations == 0
        (record,) = tracer.worst("READ")
        assert record["total_ns"] == 130
        assert sum(record["components"].values()) == record["total_ns"]
        assert record["components"] == {
            "host_queue": 10 + 30, "ftl": 15 + 5, "die_busy": 70}

    def test_out_of_order_end_still_conserves(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 3, op="READ")
        a = tracer.begin("ftl.translate", 3)
        clock.now = 5
        b = tracer.begin("flash.read", 3)
        clock.now = 11
        tracer.end(a)               # a closes before its child b
        clock.now = 20
        tracer.end(b)
        clock.now = 23
        tracer.end(root)
        assert tracer.violations == 0
        (record,) = tracer.worst("READ")
        assert sum(record["components"].values()) == 23

    def test_interleaved_tracks_partition_independently(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        r1 = tracer.begin("io.submit", 1, op="READ")
        clock.now = 4
        r2 = tracer.begin("io.submit", 2, op="WRITE")
        clock.now = 9
        f1 = tracer.begin("flash.read", 1)
        clock.now = 20
        tracer.end(f1)
        tracer.end(r1)
        clock.now = 33
        tracer.end(r2)
        assert tracer.violations == 0
        (read,) = tracer.worst("READ")
        (write,) = tracer.worst("WRITE")
        assert sum(read["components"].values()) == 20
        assert sum(write["components"].values()) == 33 - 4

    def test_double_end_is_idempotent(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 1, op="READ")
        clock.now = 8
        tracer.end(root)
        clock.now = 99
        tracer.end(root)            # pinned choice: silently ignored
        assert tracer.records == 1 and tracer.violations == 0
        (record,) = tracer.worst("READ")
        assert record["total_ns"] == 8

    def test_op_falls_back_to_root_kind(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        span = tracer.begin("flash.read", 0)
        clock.now = 3
        tracer.end(span)
        assert tracer.op_counts == {"flash.read": 1}


class TestComponentTaxonomy:
    def test_every_mapped_kind_lands_in_the_fixed_order(self):
        from repro.obs.causal import KIND_COMPONENT
        assert set(KIND_COMPONENT.values()) <= set(COMPONENTS)

    def test_unknown_kind_is_other(self):
        assert component_of("martian.telepathy") == "other"
        clock = _Clock()
        tracer = CausalTracer(clock)
        span = tracer.begin("martian.telepathy", 5)
        clock.now = 7
        tracer.end(span)
        (record,) = tracer.worst("martian.telepathy")
        assert record["components"] == {"other": 7}

    def test_blame_kinds_are_wait_components(self):
        for kind in BLAME_KINDS:
            assert component_of(kind) in ("gc_stall", "channel_wait",
                                          "die_wait")


class TestBlame:
    def test_wait_span_records_holder(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 1, op="READ")
        wait = tracer.begin("flash.die_wait", 1, holder="gc:3")
        clock.now = 40
        tracer.end(wait)
        tracer.end(root)
        (record,) = tracer.worst("READ")
        assert record["blame"] == {"gc:3": 40}
        assert tracer.blame_ns["READ"] == {"gc:3": 40}

    def test_zero_length_wait_is_not_blamed(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 1, op="READ")
        wait = tracer.begin("flash.die_wait", 1, holder="ns:2")
        tracer.end(wait)            # zero-duration: no contention at all
        clock.now = 5
        tracer.end(root)
        (record,) = tracer.worst("READ")
        assert record["blame"] == {}


class TestBoundedMemory:
    def test_top_k_keeps_exactly_the_worst(self):
        clock = _Clock()
        tracer = CausalTracer(clock, top_k=3)
        for index, total in enumerate([5, 50, 10, 40, 30, 20]):
            span = tracer.begin("io.submit", index + 1, op="READ")
            clock.now += total
            tracer.end(span)
        worst = tracer.worst("READ")
        assert [r["total_ns"] for r in worst] == [50, 40, 30]
        assert tracer.records == 6          # aggregates still count all

    def test_ties_keep_the_earlier_request(self):
        clock = _Clock()
        tracer = CausalTracer(clock, top_k=1)
        for track in (1, 2):
            span = tracer.begin("io.submit", track, op="READ")
            clock.now += 10
            tracer.end(span)
        (record,) = tracer.worst("READ")
        assert record["track"] == 1

    def test_chain_is_capped(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        root = tracer.begin("io.submit", 1, op="READ")
        for _ in range(CHAIN_CAP + 10):
            inner = tracer.begin("ftl.translate", 1)
            clock.now += 1
            tracer.end(inner)
        tracer.end(root)
        (record,) = tracer.worst("READ")
        assert len(record["chain"]) == CHAIN_CAP
        assert record["chain_dropped"] == 11    # 10 extra inners + the root

    def test_state_is_dropped_at_root_close(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        span = tracer.begin("io.submit", 1, op="READ")
        clock.now = 2
        tracer.end(span)
        assert tracer._live == {}


class TestTrackAliasing:
    """Raw request ids come from a process-global counter; stored records
    must alias them so fleet stores stay byte-identical across --jobs."""

    def test_records_use_first_appearance_aliases(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        for raw in (4711, 9000):          # arbitrary global counter values
            span = tracer.begin("io.submit", raw, op="READ")
            clock.now += 10
            tracer.end(span)
        tracks = sorted(r["track"] for r in tracer.worst("READ"))
        assert tracks == [1, 2]

    def test_owner_label_is_aliased_and_annotation_wins(self):
        tracer = CausalTracer(_Clock())
        tracer.begin("io.submit", 12345, op="READ")
        assert tracer.owner_label(12345) == "req:1"
        assert tracer.owner_label(0) == "bg"
        tracer.annotate_track(12345, "ns:7")
        assert tracer.owner_label(12345) == "ns:7"

    def test_same_track_keeps_its_alias_across_episodes(self):
        clock = _Clock()
        tracer = CausalTracer(clock)
        for _ in range(2):
            span = tracer.begin("io.submit", 777, op="READ")
            clock.now += 5
            tracer.end(span)
        assert {r["track"] for r in tracer.worst("READ")} == {1}


# -- satellite: Tracer.end edge cases -----------------------------------------


class TestTracerEndEdgeCases:
    def test_double_end_keeps_first_timestamp(self):
        clock = _Clock()
        tracer = Tracer(clock)
        span = tracer.begin("a", 1)
        clock.now = 5
        tracer.end(span)
        clock.now = 50
        tracer.end(span)            # pinned: second close is a no-op
        assert span.t_end == 5
        assert tracer._open[1] == []

    def test_lifo_close_pops_constant_time(self):
        clock = _Clock()
        tracer = Tracer(clock)
        spans = [tracer.begin("k", 1) for _ in range(100)]
        for span in reversed(spans):
            tracer.end(span)
        assert tracer._open[1] == []
        assert all(s.t_end == 0 for s in spans)

    def test_stray_end_from_foreign_tracer_is_ignored(self):
        clock = _Clock()
        tracer = Tracer(clock)
        other = Tracer(clock)
        foreign = other.begin("x", 1)
        mine = tracer.begin("y", 1)
        tracer.end(foreign)         # not on tracer's stack: stack intact
        assert tracer._open[1] == [mine]


# -- full stack: real simulations ---------------------------------------------


class TestFullStackConservation:
    def test_fio_run_conserves_every_request(self, causal):
        from repro.fleet.scenarios import run_scenario
        run_scenario(FIO_PARAMS, seed=7)
        doc = causal_summary()
        assert doc["records"] >= FIO_PARAMS["total_ios"]
        assert doc["violations"] == 0
        for system in doc["systems"]:
            for op, agg in system["ops"].items():
                assert agg["total_ns"] == sum(agg["components_ns"].values())
                for record in agg["worst"]:
                    assert sum(record["components"].values()) == \
                        record["total_ns"], (op, record)

    def test_multi_tenant_blames_other_tenants(self, causal):
        from repro.fleet.scenarios import builtin_specs, run_scenario
        spec = builtin_specs()["noisy_neighbor"]
        params = dict(spec.base, scenario=spec.scenario,
                      arbitration="rr", placement="rotate")
        run_scenario(params, seed=11)
        doc = causal_summary()
        assert doc["violations"] == 0
        blamed = set()
        for system in doc["systems"]:
            for agg in system["ops"].values():
                blamed.update(agg["blame_ns"])
        assert any(label.startswith("ns:") or label == "bg"
                   for label in blamed), blamed

    def test_capture_is_bit_neutral(self):
        """The contract: enabling causal capture cannot move a result."""
        from repro.fleet.scenarios import run_scenario
        baseline = digest(run_scenario(FIO_PARAMS, seed=7))
        enable_causal()
        try:
            captured = digest(run_scenario(FIO_PARAMS, seed=7))
        finally:
            disable_causal()
        assert captured == baseline

    def test_off_by_default_and_summary_is_deterministic(self, causal):
        from repro.fleet.scenarios import run_scenario
        run_scenario(FIO_PARAMS, seed=7)
        first = json.dumps(causal_summary(), sort_keys=True)
        enable_causal()             # re-arm: fresh collectors
        run_scenario(FIO_PARAMS, seed=7)
        second = json.dumps(causal_summary(), sort_keys=True)
        assert first == second
        disable_causal()
        assert not causal_enabled()


# -- fleet: stores, reports, explain ------------------------------------------


@pytest.fixture(scope="module")
def causal_stores(tmp_path_factory):
    """The same tiny sweep run with --causal at jobs=1 and jobs=2."""
    stores = []
    for jobs in (1, 2):
        store = ResultStore(tmp_path_factory.mktemp(f"causal-j{jobs}"))
        run_sweep(TINY, store, jobs=jobs, journal=False, causal=True)
        stores.append(store)
    return stores


class TestFleetCausal:
    def test_results_embed_the_causal_payload(self, causal_stores):
        store = causal_stores[0]
        for job_hash in store.hashes():
            payload = store.get(job_hash)["result"]["causal"]
            assert payload["violations"] == 0
            assert payload["records"] > 0
            assert payload["components"] == list(COMPONENTS)

    def test_stores_byte_identical_across_jobs_counts(self, causal_stores):
        """The determinism pin: worker layout cannot leak into a store."""
        one, two = causal_stores
        assert one.hashes() == two.hashes()
        for job_hash in one.hashes():
            assert one.path_for(job_hash).read_bytes() == \
                two.path_for(job_hash).read_bytes(), job_hash

    def test_causal_store_differs_only_by_the_causal_key(self, causal_stores,
                                                         tmp_path):
        plain = ResultStore(tmp_path / "plain")
        run_sweep(TINY, plain, jobs=1, journal=False)
        store = causal_stores[0]
        for job_hash in plain.hashes():
            with_causal = store.get(job_hash)["result"]
            without = plain.get(job_hash)["result"]
            trimmed = {k: v for k, v in with_causal.items() if k != "causal"}
            assert trimmed == without

    def test_report_folds_in_component_table(self, causal_stores):
        doc = merge_results(TINY, causal_stores[0])
        assert "causal_components" in doc
        text = render_markdown(doc)
        assert "## Causal components (all jobs merged)" in text
        for op, entry in doc["causal_components"].items():
            assert entry["total_ns"] == sum(entry["components_ns"].values())

    def test_explain_ranks_components_deterministically(self, causal_stores,
                                                        tmp_path):
        store = causal_stores[0]
        a, b = [store.get(h) for h in store.hashes()]
        doc = explain(a, b)
        assert doc["schema"] == "repro.explain/1"
        assert doc["violations"] == {"a": 0, "b": 0}
        for op_entry in doc["ops"].values():
            ranks = [(-abs(c["d_p99_ns"]), -abs(c["d_mean_ns"]),
                      c["component"]) for c in op_entry["components"]]
            assert ranks == sorted(ranks)
        # rendering twice from freshly-loaded docs is byte-stable
        again = explain(store.get(store.hashes()[0]),
                        store.get(store.hashes()[1]))
        assert render_explain_markdown(doc) == render_explain_markdown(again)

    def test_explain_without_causal_capture_is_an_error(self, tmp_path):
        plain = ResultStore(tmp_path / "plain")
        run_sweep(TINY, plain, jobs=1, journal=False)
        a, b = [plain.get(h) for h in plain.hashes()]
        with pytest.raises(ValueError, match="--causal"):
            explain(a, b)

    def test_explain_report_formats(self, causal_stores, tmp_path):
        store = causal_stores[0]
        doc = explain(*[store.get(h) for h in store.hashes()])
        md = write_explain_report(tmp_path / "e.md", doc)
        html = write_explain_report(tmp_path / "e.html", doc)
        write_explain_report(tmp_path / "e.json", doc)
        assert md.startswith("# Run explain")
        assert html.startswith("<!DOCTYPE html>")
        reloaded = json.loads((tmp_path / "e.json").read_text())
        assert reloaded["schema"] == "repro.explain/1"

    def test_merged_ops_counts_add_up(self, causal_stores):
        store = causal_stores[0]
        payload = store.get(store.hashes()[0])["result"]["causal"]
        merged = merged_ops(payload)
        assert sum(agg["count"] for agg in merged.values()) == \
            payload["records"]

    def test_causal_report_renders_chains(self, causal_stores):
        payload = causal_stores[0].get(
            causal_stores[0].hashes()[0])["result"]["causal"]
        text = render_causal_markdown(payload, "forensics")
        assert text.startswith("# forensics")
        assert "Worst" in text


class TestCliCausal:
    def test_run_one_job_rearms_per_job(self):
        enable_causal()
        try:
            job = _job(dict(FIO_PARAMS))
            _hash, first = run_one_job(job, causal=True)
            _hash, second = run_one_job(job, causal=True)
            # capture re-arms per job: summaries identical, not cumulative
            assert first["causal"] == second["causal"]
        finally:
            disable_causal()
        assert not causal_enabled()

    def test_run_one_job_owns_switch_when_not_armed(self):
        job = _job(dict(FIO_PARAMS))
        _hash, result = run_one_job(job, causal=True)
        assert result["causal"]["violations"] == 0
        assert not causal_enabled()     # released its own arm

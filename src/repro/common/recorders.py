"""Latency and bandwidth measurement recorders."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.units import MB, SEC
from repro.obs.histogram import LogHistogram


class LatencyRecorder:
    """Collects per-request latencies (ns) and summarizes them.

    Backed by a streaming :class:`~repro.obs.histogram.LogHistogram`:
    memory stays bounded no matter how many samples arrive (the seed
    implementation kept every sample forever and re-sorted per
    percentile call).  ``count``/``mean``/``min``/``max`` are exact;
    :meth:`percentile` is a bucket estimate within the histogram's
    documented relative error (6.25% at the default 16 sub-buckets),
    which is far below run-to-run workload variance.
    """

    __slots__ = ("_hist",)

    def __init__(self) -> None:
        self._hist = LogHistogram()

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError("negative latency")
        self._hist.record(latency_ns)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def histogram(self) -> LogHistogram:
        """The backing streaming histogram (mergeable, report-ready)."""
        return self._hist

    def mean(self) -> float:
        return self._hist.mean()

    def mean_us(self) -> float:
        return self.mean() / 1000.0

    def percentile(self, p: float) -> int:
        """Estimated percentile in ns (see class note on error bounds)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self._hist.count == 0:
            return 0
        return round(self._hist.percentile(p))

    def max(self) -> int:
        return self._hist.max

    def min(self) -> int:
        return self._hist.min

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold another recorder's samples into this one (lossless).

        Delegates to :meth:`LogHistogram.merge`, so per-tenant recorders
        roll up to a device-wide recorder exactly — the merged histogram
        is bucket-for-bucket identical to one fed every sample directly
        (pinned by the rollup regression test).
        """
        self._hist.merge(other._hist)
        return self

    def summary(self) -> Dict[str, float]:
        p50, p99 = self._hist.percentiles([50, 99])
        return {
            "count": self.count,
            "mean_us": self.mean_us(),
            "p50_us": p50 / 1000.0,
            "p99_us": p99 / 1000.0,
            "max_us": self.max() / 1000.0,
        }


class BandwidthRecorder:
    """Counts bytes moved; reports MB/s over a window.

    ``warmup_ns`` excludes the initial transient (cache fill, queue ramp)
    from steady-state bandwidth, mirroring how FIO reports after ramp time.
    """

    def __init__(self, warmup_ns: int = 0) -> None:
        self.warmup_ns = warmup_ns
        self._bytes = 0
        self._warm_bytes = 0
        self._first_ns: Optional[int] = None
        self._last_ns: Optional[int] = None

    def record(self, nbytes: int, now_ns: int) -> None:
        if self._first_ns is None:
            self._first_ns = now_ns
        self._bytes += nbytes
        if now_ns - self._first_ns >= self.warmup_ns:
            if self._warm_bytes == 0:
                self._warm_start = now_ns
            self._warm_bytes += nbytes
        self._last_ns = now_ns

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def mbps(self) -> float:
        """Steady-state bandwidth in MB/s."""
        if self._warm_bytes and self._last_ns is not None:
            span = self._last_ns - self._warm_start
            if span > 0:
                return (self._warm_bytes / MB) / (span / SEC)
        if self._first_ns is None or self._last_ns is None:
            return 0.0
        span = self._last_ns - self._first_ns
        return (self._bytes / MB) / (span / SEC) if span > 0 else 0.0

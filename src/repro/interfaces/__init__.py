"""Storage interfaces: SATA, UFS (h-type) and NVMe, OCSSD (s-type).

Each interface provides a host-side adapter (controller or driver) that
the block layer dispatches into, and a device-side controller that
parses commands, drives the SSD model and emulates all data transfers
through the DMA engine.
"""

from repro.interfaces.base import HostAdapter

__all__ = ["HostAdapter"]

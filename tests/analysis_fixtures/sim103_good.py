"""SIM103 fixture: set contents visited in sorted (deterministic) order."""


def total_latency(samples):
    acc = 0.0
    for value in sorted(samples):
        acc += value
    return acc


def gc_order(dirty):
    victims = set(dirty)
    return [block for block in sorted(victims)]

"""Discrete-event simulation kernel.

A small, deterministic, generator-driven event simulator in the style of
SimPy.  Everything in the Amber reproduction — host CPUs, buses, DMA
engines, embedded cores, flash dies — is expressed as processes and
resources on top of this kernel.

Time is an integer number of nanoseconds.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.stats import TimeAverage, UtilizationTracker

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "PriorityStore",
    "TimeAverage",
    "UtilizationTracker",
]

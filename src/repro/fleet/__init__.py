"""``repro.fleet`` — the distributed design-space sweep engine.

The paper's value is design-space answers (Figs 10–16), but a single
``FullSystem`` run answers one point at a time.  This package runs
*fleets* of configurations: a declarative :class:`SweepSpec`
(grid/random over presets × workloads × firmware knobs, config-as-data
with stable config hashes), a process-pool runner whose per-job seeds
derive from those hashes, a resumable content-addressed
:class:`ResultStore`, and merged reports built from the mergeable
streaming histograms of :mod:`repro.obs`.

Running sweeps also stream a live NDJSON run journal beside the store
(:mod:`repro.fleet.watch` + :mod:`repro.obs.journal`): ``watch`` and
``status --follow`` tail it to show running/failed/ETA per job and emit
streaming partial reports that converge byte-identically to the final
``report``.

Entry points::

    python -m repro.fleet plan   --builtin smoke4
    python -m repro.fleet run    --builtin smoke4 --store out/ --jobs 4
    python -m repro.fleet status --builtin smoke4 --store out/ [--follow]
    python -m repro.fleet watch  --builtin smoke4 --store out/ --out live.md
    python -m repro.fleet report --builtin smoke4 --store out/ --out fleet.md

See ``docs/FLEET.md`` for the spec schema, hash/resume semantics and
the determinism guarantees the golden tests pin.
"""

from repro.fleet.report import (
    merge_results,
    merged_json,
    render_html,
    render_markdown,
    write_fleet_report,
)
from repro.fleet.runner import RunSummary, run_one_job, run_sweep, sweep_status
from repro.fleet.scenarios import (
    SCENARIOS,
    builtin_specs,
    run_scenario,
    scenario,
    spec_names,
)
from repro.fleet.spec import Job, SweepSpec, config_hash, derive_seed
from repro.fleet.store import ResultStore
from repro.fleet.watch import (
    journal_status,
    render_status,
    watch,
    write_partial_report,
)

__all__ = [
    "Job",
    "ResultStore",
    "RunSummary",
    "SCENARIOS",
    "SweepSpec",
    "builtin_specs",
    "config_hash",
    "derive_seed",
    "journal_status",
    "merge_results",
    "merged_json",
    "render_html",
    "render_markdown",
    "render_status",
    "run_one_job",
    "run_scenario",
    "run_sweep",
    "scenario",
    "spec_names",
    "sweep_status",
    "watch",
    "write_fleet_report",
    "write_partial_report",
]

"""Fast smoke tests for the experiment drivers (full runs live in
benchmarks/)."""

from repro.experiments import fig03_04_baselines, tables


class TestTables:
    def test_run_and_render(self):
        result = tables.run(quick=True)
        text = tables.render(result)
        assert "Table I" in text and "Table IV" in text
        assert "Intel i7-4790K" in text

    def test_table3_generators_validate(self):
        result = tables.run(quick=True)
        for name, data in result["table3"].items():
            spec = data["spec"]
            gen = data["generated"]
            assert abs(gen["read_ratio"] * 100
                       - spec["Read ratio (%)"]) < 10, name


class TestFig0304:
    def test_trend_classes(self):
        result = fig03_04_baselines.run(quick=True)
        trends = result["trend_classes"]
        assert trends["flashsim"] == "constant"
        assert trends["mqsim"] == "linear"
        text = fig03_04_baselines.render(result)
        assert "Fig 3" in text and "Fig 4" in text

    def test_every_pattern_present(self):
        result = fig03_04_baselines.run(quick=True)
        assert set(result["patterns"]) == {"seqread", "randread",
                                           "seqwrite", "randwrite"}
        for per_sim in result["patterns"].values():
            assert "real-device" in per_sim
            for curve in per_sim.values():
                for point in curve.values():
                    assert point["bandwidth_mbps"] > 0

"""SIM220 fixture: one global order — die, then channel — everywhere."""


class Backend:
    def read(self, sim):
        yield self.die.acquire()
        try:
            yield self.channel.acquire()
            try:
                yield sim.timeout(5)
            finally:
                self.channel.release()
        finally:
            self.die.release()

    def program(self, sim):
        yield self.die.acquire()
        try:
            yield self.channel.acquire()
            try:
                yield sim.timeout(7)
            finally:
                self.channel.release()
        finally:
            self.die.release()

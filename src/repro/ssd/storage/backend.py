"""Flash transaction execution: dies, channels, ONFi timing.

The backend turns FTL-level page operations into timed resource usage:

* each **die** executes one flash operation at a time (multi-plane
  operations occupy the die once for all planes);
* each **channel** is a shared ONFi bus; command/address cycles and data
  transfers serialize on it;
* reads hold the die through the data-out transfer (the page register is
  busy until drained), writes release the channel before the long program
  phase so other dies can stream data meanwhile — this coupling produces
  the realistic channel/way conflict behaviour of Figure 2's architecture.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.common.units import transfer_ns
from repro.sim import Resource
from repro.ssd.config import SSDConfig
from repro.ssd.storage.address import AddressMapper
from repro.ssd.storage.power import NandPowerMeter


class FlashBackend:
    """Timed access to the flash array's dies and channels."""

    def __init__(self, sim, config: SSDConfig, power: NandPowerMeter = None,
                 erase_counts=None) -> None:
        self.sim = sim
        self.config = config
        geom = config.geometry
        self.mapper = AddressMapper(geom)
        self.power = power or NandPowerMeter(sim, config.nand_power, geom)
        self._dies: List[Resource] = [
            Resource(sim, 1, name=f"die{i}") for i in range(geom.total_dies)]
        self._channels: List[Resource] = [
            Resource(sim, 1, name=f"ch{i}") for i in range(geom.channels)]
        self._rng = random.Random(config.reliability.seed)
        self._erase_count_of = erase_counts or (lambda unit, block: 0)
        # Last grantee of each die/channel, for causal blame edges.
        # Maintained only while tracing is on (docs/OBSERVABILITY.md,
        # "Causal forensics"): never read on the untraced hot path.
        self._die_owner: Dict[int, str] = {}
        self._channel_owner: Dict[int, str] = {}
        # Timing memo tables: FlashTiming is frozen, so per-parity read/
        # program latencies and per-size transfer times never change.
        timing = config.timing
        self._t_read_parity = (timing.t_read(0), timing.t_read(1))
        self._t_prog_parity = (timing.t_prog(0), timing.t_prog(1))
        self._xfer_cache: dict = {}
        # observability
        self.reads_issued = 0
        self.programs_issued = 0
        self.erases_issued = 0
        self.read_retries = 0
        self.erase_failures = 0

    # -- media error injection ----------------------------------------------

    def _wear_factor(self, unit: int, block: int) -> float:
        rel = self.config.reliability
        return 1.0 + rel.wear_acceleration \
            * self._erase_count_of(unit, block) / 1000.0

    def _read_needs_retry(self, unit: int, block: int) -> bool:
        p = self.config.reliability.read_retry_probability
        return p > 0 and self._rng.random() < min(
            1.0, p * self._wear_factor(unit, block))

    def _erase_fails(self, unit: int, block: int) -> bool:
        p = self.config.reliability.erase_fail_probability
        return p > 0 and self._rng.random() < min(
            1.0, p * self._wear_factor(unit, block))

    # -- resource lookup --------------------------------------------------

    def die_resource(self, unit: int) -> Resource:
        return self._dies[self.mapper.die_of_unit(unit)]

    def channel_resource(self, unit: int) -> Resource:
        return self._channels[self.mapper.channel_of_unit(unit)]

    def die_utilizations(self) -> List[float]:
        return [die.utilization() for die in self._dies]

    def channel_utilizations(self) -> List[float]:
        return [ch.utilization() for ch in self._channels]

    def register_metrics(self, registry, prefix: str = "ssd") -> None:
        """Expose per-channel/die utilization and flash op counters.

        Names follow the hierarchical convention of
        ``docs/OBSERVABILITY.md``, e.g. ``ssd.channel0.util``.
        """
        scope = registry.scoped(prefix)
        for i, channel in enumerate(self._channels):
            scope.register(f"channel{i}.util", channel.utilization)
            scope.register(f"channel{i}.busy_ns",
                           channel.busy_time)
        for i, die in enumerate(self._dies):
            scope.register(f"die{i}.util", die.utilization)
        scope.register("flash.reads", lambda: float(self.reads_issued))
        scope.register("flash.programs", lambda: float(self.programs_issued))
        scope.register("flash.erases", lambda: float(self.erases_issued))
        scope.register("flash.read_retries", lambda: float(self.read_retries))

    # -- timing helpers ----------------------------------------------------

    def _xfer_ns(self, nbytes: int) -> int:
        try:
            return self._xfer_cache[nbytes]
        except KeyError:
            ns = self.config.timing.t_cmd + transfer_ns(
                nbytes, self.config.timing.channel_bandwidth)
            self._xfer_cache[nbytes] = ns
            return ns

    def _payload_bytes(self, nbytes: int) -> int:
        if self.config.fil.transfer_whole_page or nbytes <= 0:
            return self.config.geometry.page_size
        return min(nbytes, self.config.geometry.page_size)

    # -- traced acquisition (causal forensics) ------------------------------

    def _traced_acquire(self, resource: Resource, kind: str,
                        owners: Dict[int, str], key: int,
                        track: int, ctx: Optional[str]):
        """Acquire ``resource``, recording contention for causal blame.

        Only reached when tracing is on (call sites guard on
        ``tracer.enabled``, keeping the untraced hot path byte-identical
        to the pre-forensics code).  A ``flash.die_wait`` /
        ``flash.channel_wait`` span opens *only when the resource is
        already held*, carrying ``holder=`` — the blame label of the
        most recent grantee — so tail causal chains name the specific
        GC run or contending tenant.  After the grant, the owner
        registry records this caller: ``ctx`` for background work
        (``gc:<run>``, ``flush``), else the track's own label
        (``ns:<nsid>`` / ``req:<id>`` / ``bg``).
        """
        tracer = self.sim.tracer
        if resource.in_use >= resource.capacity:
            span = tracer.begin(kind, track, holder=owners.get(key, "?"))
            yield resource.acquire()  # simlint: disable=SIM106 -- acquire-only helper; the calling operation releases in its try/finally
            tracer.end(span)
        else:
            yield resource.acquire()  # simlint: disable=SIM106 -- acquire-only helper; the calling operation releases in its try/finally
        owners[key] = ctx if ctx is not None else tracer.owner_label(track)

    # -- operations (generators to be driven as processes) -----------------

    def read_page(self, ppn: int, nbytes: int = 0, track: int = 0,
                  ctx: Optional[str] = None):
        """Sense a page and drain it over the channel.

        ``nbytes`` limits the data-out transfer (partial-page read); 0
        means the whole page.
        """
        unit = self.mapper.unit_of_ppn(ppn)
        page = self.mapper.page_of_ppn(ppn)
        t_read = self._t_read_parity[page & 1]
        payload = self._payload_bytes(nbytes)
        die = self.die_resource(unit)
        channel = self.channel_resource(unit)

        block = self.mapper.block_of_ppn(ppn)
        traced = self.sim.tracer.enabled
        if traced:
            yield from self._traced_acquire(
                die, "flash.die_wait", self._die_owner,
                self.mapper.die_of_unit(unit), track, ctx)
        else:
            yield die.acquire()
        try:
            yield self.sim.timeout(t_read)
            # ECC read-retry: re-sense with tuned thresholds until clean
            retries = 0
            while (self._read_needs_retry(unit, block)
                   and retries < self.config.reliability.max_read_retries):
                retries += 1
                self.read_retries += 1
                self.power.record_read()
                yield self.sim.timeout(t_read)
            if traced:
                yield from self._traced_acquire(
                    channel, "flash.channel_wait", self._channel_owner,
                    self.mapper.channel_of_unit(unit), track, ctx)
            else:
                yield channel.acquire()
            try:
                yield self.sim.timeout(self._xfer_ns(payload))
            finally:
                channel.release()
        finally:
            die.release()
        self.reads_issued += 1
        self.power.record_read()
        self.power.record_transfer(payload)

    def program_page(self, ppn: int, nbytes: int = 0, track: int = 0,
                     ctx: Optional[str] = None):
        """Stream data in over the channel, then program the cell array."""
        unit = self.mapper.unit_of_ppn(ppn)
        page = self.mapper.page_of_ppn(ppn)
        payload = self.config.geometry.page_size  # programs write whole pages
        die = self.die_resource(unit)
        channel = self.channel_resource(unit)

        traced = self.sim.tracer.enabled
        if traced:
            yield from self._traced_acquire(
                die, "flash.die_wait", self._die_owner,
                self.mapper.die_of_unit(unit), track, ctx)
        else:
            yield die.acquire()
        try:
            if traced:
                yield from self._traced_acquire(
                    channel, "flash.channel_wait", self._channel_owner,
                    self.mapper.channel_of_unit(unit), track, ctx)
            else:
                yield channel.acquire()
            try:
                yield self.sim.timeout(self._xfer_ns(payload))
            finally:
                channel.release()
            yield self.sim.timeout(self._t_prog_parity[page & 1])
        finally:
            die.release()
        self.programs_issued += 1
        self.power.record_program()
        self.power.record_transfer(payload)

    def program_multiplane(self, ppns: Sequence[int], track: int = 0,
                           ctx: Optional[str] = None):
        """Multi-plane program: one die busy period covers sibling planes.

        All PPNs must live on the same die at the same page offset; data
        for each plane streams over the channel sequentially, then one
        program pulse covers them all (slowest page wins).
        """
        if not ppns:
            return
        units = {self.mapper.die_of_unit(self.mapper.unit_of_ppn(p)) for p in ppns}
        if len(units) != 1:
            raise ValueError("multi-plane program must target a single die")
        unit0 = self.mapper.unit_of_ppn(ppns[0])
        payload = self.config.geometry.page_size
        die = self.die_resource(unit0)
        channel = self.channel_resource(unit0)

        traced = self.sim.tracer.enabled
        if traced:
            yield from self._traced_acquire(
                die, "flash.die_wait", self._die_owner,
                self.mapper.die_of_unit(unit0), track, ctx)
        else:
            yield die.acquire()
        try:
            if traced:
                yield from self._traced_acquire(
                    channel, "flash.channel_wait", self._channel_owner,
                    self.mapper.channel_of_unit(unit0), track, ctx)
            else:
                yield channel.acquire()
            try:
                yield self.sim.timeout(len(ppns) * self._xfer_ns(payload))
            finally:
                channel.release()
            t_prog = max(self._t_prog_parity[self.mapper.page_of_ppn(p) & 1]
                         for p in ppns)
            yield self.sim.timeout(t_prog)
        finally:
            die.release()
        self.programs_issued += len(ppns)
        for _ in ppns:
            self.power.record_program()
        self.power.record_transfer(payload * len(ppns))

    def erase_block(self, unit: int, block: int, track: int = 0,
                    ctx: Optional[str] = None):
        """Erase one block; the die is busy for tERASE.

        Returns True on success, False when the erase failed permanently
        (the caller must retire the block — bad-block management).
        """
        die = self.die_resource(unit)
        if self.sim.tracer.enabled:
            yield from self._traced_acquire(
                die, "flash.die_wait", self._die_owner,
                self.mapper.die_of_unit(unit), track, ctx)
        else:
            yield die.acquire()
        try:
            yield self.sim.timeout(self.config.timing.t_erase)
        finally:
            die.release()
        self.erases_issued += 1
        self.power.record_erase()
        if self._erase_fails(unit, block):
            self.erase_failures += 1
            return False
        return True

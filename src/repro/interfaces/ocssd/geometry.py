"""OCSSD geometry and chunk model (specs 1.2 and 2.0).

OCSSD 2.0 describes the device as parallel units (PUs) holding *chunks*
— sequential-write regions equivalent to physical blocks — and reports
per-chunk state plus media latencies to the host, which is exactly the
information pblk needs to run the FTL host-side.  The 1.2 spec exposed
raw channel/LUN/plane/block/page addressing; we support both views over
the same backing geometry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.ssd.config import SSDConfig


class ChunkState(enum.Enum):
    FREE = "free"          # erased, write pointer at 0
    OPEN = "open"          # partially written
    CLOSED = "closed"      # fully written
    OFFLINE = "offline"    # worn out / bad


@dataclass(frozen=True)
class ChunkDescriptor:
    """OCSSD 2.0 chunk report entry."""

    pu: int                # parallel unit index
    chunk: int             # chunk (block) index within the PU
    state: ChunkState
    write_pointer: int     # next writable page offset
    erase_count: int


@dataclass(frozen=True)
class OcssdGeometry:
    """What an OCSSD geometry/identify command reports to the host."""

    spec_version: str            # "1.2" | "2.0"
    num_pu: int                  # parallel units (2.0) / ch x lun (1.2)
    chunks_per_pu: int
    pages_per_chunk: int
    page_size: int
    t_read_typ: int              # media latencies exposed to the host
    t_prog_typ: int
    t_erase_typ: int

    @property
    def total_pages(self) -> int:
        return self.num_pu * self.chunks_per_pu * self.pages_per_chunk

    @classmethod
    def from_config(cls, config: SSDConfig,
                    spec_version: str = "2.0") -> "OcssdGeometry":
        if spec_version not in ("1.2", "2.0"):
            raise ValueError(f"unsupported OCSSD spec {spec_version!r}")
        geom = config.geometry
        timing = config.timing
        return cls(
            spec_version=spec_version,
            num_pu=geom.parallel_units,
            chunks_per_pu=geom.blocks_per_plane,
            pages_per_chunk=geom.pages_per_block,
            page_size=geom.page_size,
            t_read_typ=int(timing.t_read_avg),
            t_prog_typ=int(timing.t_prog_avg),
            t_erase_typ=timing.t_erase,
        )

    def describe_12(self) -> Dict[str, int]:
        """The 1.2-style identify payload (grp/pu/chk address format)."""
        return {
            "num_grp": 1,
            "num_pu": self.num_pu,
            "num_chk": self.chunks_per_pu,
            "clba": self.pages_per_chunk,
            "csecs": self.page_size,
        }

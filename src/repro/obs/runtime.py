"""Process-wide tracing switch and collection point.

Experiments build a fresh :class:`~repro.sim.Simulator` per data point,
so there is no single object a CLI flag could hand a tracer to.  This
module is the rendezvous: :func:`enable_tracing` flips a process-wide
switch, after which every newly-constructed ``Simulator`` asks
:func:`tracer_for` and receives a live :class:`~repro.obs.tracer.Tracer`
(registered here for later export) instead of the shared
:data:`~repro.obs.tracer.NULL_TRACER`.  Metric snapshots taken at the
end of each run land here too, labelled per system.

With the switch off — the default, and the state every tier-1 test runs
under — :func:`tracer_for` returns the null tracer and both collection
functions are no-ops, so simulation behaviour and figure output are
byte-identical to a build without this module.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs import causal as _causal
from repro.obs.tracer import NULL_TRACER, Tracer

_active = False
_tracers: List[Tracer] = []
_metric_snapshots: List[Tuple[str, Dict[str, float]]] = []


def tracing_enabled() -> bool:
    """True while the process-wide tracing switch is on."""
    return _active


def enable_tracing() -> None:
    """Turn tracing on and clear anything collected previously."""
    global _active
    _active = True
    _tracers.clear()
    _metric_snapshots.clear()


def disable_tracing() -> None:
    """Turn tracing off and drop collected tracers and snapshots."""
    global _active
    _active = False
    _tracers.clear()
    _metric_snapshots.clear()


def tracer_for(clock) -> Tracer:
    """Tracer for a new simulator: live and collected, or the null one.

    When causal capture (:mod:`repro.obs.causal`) is armed the tracer is
    a :class:`~repro.obs.causal.CausalTracer` — still a full span tracer
    when plain tracing is *also* on (``retain_spans``), so Chrome-trace
    export and causal records come from one pass.
    """
    if _causal.causal_enabled():
        tracer = _causal.causal_tracer_for(clock, retain_spans=_active)
        if _active:
            _tracers.append(tracer)
        return tracer
    if not _active:
        return NULL_TRACER
    tracer = Tracer(clock)
    _tracers.append(tracer)
    return tracer


def tracers() -> List[Tracer]:
    """Every live tracer handed out since tracing was enabled."""
    return list(_tracers)


def label_latest_tracer(label: str) -> None:
    """Attach a human-readable label to the most recent tracer.

    Exporters show it as the Chrome-trace process name; harmless no-op
    when tracing is off.
    """
    if _tracers:
        _tracers[-1].label = label
    _causal.label_latest(label)


def collect_metrics(label: str, snapshot: Dict[str, float]) -> None:
    """Record one system's end-of-run metric snapshot (no-op when off)."""
    if _active:
        _metric_snapshots.append((label, dict(snapshot)))


def metric_snapshots() -> List[Tuple[str, Dict[str, float]]]:
    """Labelled metric snapshots collected since tracing was enabled."""
    return list(_metric_snapshots)

"""SimSanitizer: an opt-in, observe-only runtime checker for the kernel.

Armed the same way as telemetry (:mod:`repro.obs.telemetry`): a
process-wide switch — :func:`enable_sanitizer`, or ``REPRO_SANITIZE=1``
in the environment — after which every newly-built
:class:`~repro.sim.Simulator` asks :func:`sanitizer_for` and receives a
live :class:`SimSanitizer` that the engine's hot loops consult once per
processed event.  Off (the default, and the tier-1 state)
:func:`sanitizer_for` returns ``None`` and the engine pays one
``is None`` test per event.

The sanitizer only *observes* — it never schedules events, acquires
resources, advances the clock or raises mid-run — so an enabled run is
bit-identical to a disabled one (pinned by the golden suite).  It
detects:

* **causality violations** — a popped event timestamped before the
  clock's high-water mark, i.e. something was force-scheduled into the
  past (``sim._enqueue`` rejects negative delays, but a raw
  ``heappush`` bypasses it); this is also what a non-monotonic ``now``
  looks like from the loop;
* **leaked tokens** — ``Resource`` units still held when the queue
  drains: an acquire whose release was skipped on some path;
* **stuck processes** — processes that never finished although the
  simulation has no events left to run them with (a deadlock, or a
  wait on an event nobody will trigger);
* **double cancels** — ``Timeout.cancel()`` on an already-cancelled
  timeout, which usually means two owners think they own the timer.

Violations accumulate on the sanitizer (and process-wide via
:func:`all_violations`); :meth:`SimSanitizer.check` raises a
:class:`SanitizerError` summarizing them, and failures dump a
``sanitizer-*.json`` post-mortem through the
:class:`~repro.obs.flightrec.FlightRecorder` machinery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.obs.flightrec import FlightRecorder


class SanitizerError(AssertionError):
    """Raised by :meth:`SimSanitizer.check` when violations were found."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    kind: str        # "causality" | "leaked-token" | "stuck-process" | ...
    t_ns: int        # simulated time at detection
    detail: str

    def format(self) -> str:
        return f"[{self.kind}] t={self.t_ns}ns: {self.detail}"


_active = os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false")
_flight_events = 256
_dump_dir: Optional[str] = None
_sanitizers: List["SimSanitizer"] = []


def sanitizer_enabled() -> bool:
    """True while the process-wide sanitizer switch is on."""
    return _active


def enable_sanitizer(flight_events: int = 256,
                     dump_dir: Optional[str] = None) -> None:
    """Arm the sanitizer for every subsequently-built simulator."""
    global _active, _flight_events, _dump_dir
    _active = True
    _flight_events = int(flight_events)
    _dump_dir = dump_dir
    _sanitizers.clear()


def disable_sanitizer() -> None:
    """Turn the sanitizer off and drop every collected instance."""
    global _active
    _active = False
    _sanitizers.clear()


def sanitizer_for(sim: Any) -> Optional["SimSanitizer"]:
    """A live sanitizer for a new simulator, or ``None`` when off."""
    if not _active:
        return None
    sanitizer = SimSanitizer(sim, flight_events=_flight_events,
                             dump_dir=_dump_dir,
                             label=f"sanitized{len(_sanitizers)}")
    _sanitizers.append(sanitizer)
    return sanitizer


def sanitizers() -> List["SimSanitizer"]:
    """Every sanitizer handed out since the switch was armed."""
    return list(_sanitizers)


def all_violations() -> List[Violation]:
    """Violations across every simulator built since arming."""
    return [v for s in _sanitizers for v in s.violations]


class SimSanitizer:
    """Per-simulator invariant checker driven from the engine hot loop.

    ``on_event`` is the hot-loop entry point: one ring append plus one
    integer comparison per processed event.  Everything else runs on
    cold paths (construction, drain, cancel, failure).
    """

    __slots__ = ("sim", "violations", "label", "flight", "_high_water",
                 "_resources", "_processes", "_dump_dir", "dumped_to")

    def __init__(self, sim: Any, flight_events: int = 256,
                 dump_dir: Optional[str] = None,
                 label: str = "sanitized") -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self.label = label
        self.flight = FlightRecorder(flight_events, label=label)
        self._high_water = 0
        self._resources: List[Any] = []
        self._processes: List[Any] = []
        self._dump_dir = dump_dir
        self.dumped_to: Optional[str] = None

    # -- registration (called from kernel constructors, observe-only) ------

    def watch_resource(self, resource: Any) -> None:
        """Track a Resource for the leaked-token drain check."""
        self._resources.append(resource)

    def watch_process(self, process: Any) -> None:
        """Track a Process for the stuck-process drain check."""
        self._processes.append(process)

    # -- the engine hot-loop hook ------------------------------------------

    def on_event(self, when: int, event: Any) -> None:
        """Record one processed event; flag time running backwards."""
        self.flight.note_event(when, type(event).__name__)
        if when < self._high_water:
            self.violations.append(Violation(
                "causality", when,
                f"{type(event).__name__} processed at t={when} after the "
                f"clock reached t={self._high_water}: an event was "
                "scheduled into the past"))
        else:
            self._high_water = when

    # -- cold-path hooks ----------------------------------------------------

    def on_double_cancel(self, timeout: Any) -> None:
        """A Timeout was cancelled twice — two owners for one timer."""
        self.violations.append(Violation(
            "double-cancel", self.sim.now,
            f"cancel() on an already-cancelled {timeout!r}"))

    def on_drain(self) -> None:
        """The queue drained: audit resources and processes."""
        now = self.sim.now
        for resource in self._resources:
            held = resource.in_use
            if held:
                name = resource.name or "<unnamed>"
                self.violations.append(Violation(
                    "leaked-token", now,
                    f"resource {name!r} still holds {held} unit(s) at "
                    "drain: some acquire was never released"))
            if resource.queued:
                name = resource.name or "<unnamed>"
                self.violations.append(Violation(
                    "stuck-waiter", now,
                    f"resource {name!r} has {resource.queued} acquire(s) "
                    "that can never be granted"))
        for process in self._processes:
            if process.is_alive:
                self.violations.append(Violation(
                    "stuck-process", now,
                    "process never finished although the event queue "
                    f"drained: {process!r}"))

    def on_failure(self, error: BaseException) -> Optional[str]:
        """Dump a post-mortem when the run the sanitizer watched failed."""
        return self._dump(error=error)

    # -- reporting ----------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any violation was recorded."""
        if self.violations:
            self._dump()
            lines = "\n  ".join(v.format() for v in self.violations)
            raise SanitizerError(
                f"{len(self.violations)} sanitizer violation(s):\n  {lines}")

    def report(self) -> str:
        """Human-readable summary of this simulator's violations."""
        if not self.violations:
            return f"{self.label}: no violations"
        lines = [f"{self.label}: {len(self.violations)} violation(s)"]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)

    def _dump(self, error: Optional[BaseException] = None) -> Optional[str]:
        """Write ``sanitizer-<label>.json`` next to the run; never raises."""
        try:
            doc = self.flight.snapshot(sim=self.sim, error=error)
            doc["violations"] = [
                {"kind": v.kind, "t_ns": v.t_ns, "detail": v.detail}
                for v in self.violations]
            directory = self._dump_dir or "."
            base = "".join(c if c.isalnum() or c in "-_" else "-"
                           for c in self.label) or "sim"
            path = os.path.join(directory, f"sanitizer-{base}.json")
            suffix = 1
            while os.path.exists(path):
                suffix += 1
                path = os.path.join(directory,
                                    f"sanitizer-{base}-{suffix}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=1, sort_keys=True)
                handle.write("\n")
            self.dumped_to = path
            return path
        except Exception:  # pragma: no cover - defensive: never mask the run
            return None

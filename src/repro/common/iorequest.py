"""Block-level I/O request carried through the full storage stack."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_REQUEST_IDS = count(1)


class IOKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"
    # OCSSD vector commands address physical flash directly.
    VECTOR_READ = "vector_read"
    VECTOR_WRITE = "vector_write"
    VECTOR_ERASE = "vector_erase"

    @property
    def is_read(self) -> bool:
        return self in (IOKind.READ, IOKind.VECTOR_READ)

    @property
    def is_write(self) -> bool:
        return self in (IOKind.WRITE, IOKind.VECTOR_WRITE)


@dataclass
class IORequest:
    """One host-visible I/O, in 512-byte logical sectors.

    The request records timestamps as it moves down and back up the stack,
    so user-level, interface-level and device-level latencies can all be
    reported (Fig 14 distinguishes exactly these levels).
    """

    kind: IOKind
    slba: int                       # starting logical block address (sectors)
    nsectors: int                   # length in sectors
    data: Optional[bytes] = None    # real payload when data emulation is on
    req_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    # lifecycle timestamps (ns); -1 = not reached
    t_submit: int = -1              # user-level submission (syscall entry)
    t_driver: int = -1              # handed to the device driver
    t_device: int = -1              # fetched by the device controller
    t_backend_done: int = -1        # flash/cache service complete
    t_complete: int = -1            # user-level completion

    # set by drivers/controllers as the request is serviced
    queue_id: int = 0
    tag: int = -1
    # NVMe namespace carrying the request; 0 = the driver's default
    # namespace (legacy single-tenant behaviour).  slba is then
    # namespace-relative and translated by the driver.
    nsid: int = 0

    SECTOR = 512

    @property
    def nbytes(self) -> int:
        return self.nsectors * self.SECTOR

    @property
    def offset(self) -> int:
        return self.slba * self.SECTOR

    def user_latency(self) -> int:
        """End-to-end latency seen by the submitting application."""
        if self.t_complete < 0 or self.t_submit < 0:
            raise ValueError("request has not completed")
        return self.t_complete - self.t_submit

    def device_latency(self) -> int:
        """Latency inside the device (fetch -> backend done)."""
        if self.t_backend_done < 0 or self.t_device < 0:
            raise ValueError("request has not been serviced by the device")
        return self.t_backend_done - self.t_device

    def sector_range(self) -> range:
        return range(self.slba, self.slba + self.nsectors)

    def overlaps(self, other: "IORequest") -> bool:
        return (self.slba < other.slba + other.nsectors
                and other.slba < self.slba + self.nsectors)

    def __repr__(self) -> str:
        return (f"IORequest(#{self.req_id} {self.kind.value} "
                f"slba={self.slba} n={self.nsectors})")

"""Interprocedural determinism taint — the SIM210 rule.

SIM101/SIM102/SIM103 flag nondeterminism at the *call site*: a
``time.time()`` read, a global-RNG draw, a set iteration.  They cannot
see a wall-clock value that is returned through two helper layers and
only then stored into model state — each individual function looks
innocent.  This pass can: it computes a **return-taint summary** for
every project function (which taint kinds its return value carries,
and which parameters flow through to the return), propagates taint
across resolved call edges, and reports when a tainted value reaches
**sim-visible state** — an attribute store, a ``timeout()`` delay, an
event ``succeed()`` payload.

Taint kinds:

* ``wallclock`` — the :data:`_WALLCLOCK` reads;
* ``rng`` — process-global RNG draws (``random.*``, ``os.urandom``,
  ``uuid.uuid4``) and unseeded ``random.Random()``;
* ``set-order`` — an ordered sequence materialized from a set
  (``list(seen)``) whose element order is hash-dependent.

``sorted()``/``min()``/``max()``/``sum()`` sanitize set-order taint;
``len()`` sanitizes everything (a count is order-free).

SIM210 deliberately reports only **interprocedural** flows — the
witness must contain at least one resolved call edge.  Same-function
flows are already covered (and suppressed, where sanctioned) by the
per-file rules; re-reporting them here would force every documented
SIM101 site to carry a second suppression.

The sanctioned wall-clock modules (SIM110's list) may store wall-clock
values *internally* — that is their job — so wallclock-kind sinks in
those files are skipped.  A wall-clock value **escaping** one of them
into ordinary simulation state is still reported: the boundary is the
module, not the call chain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.project import (
    FunctionInfo,
    Project,
    dotted_name,
    expand_alias,
    ordered_body,
)
from repro.analysis.registry import ProjectSite, project_rule
from repro.analysis.rules import (
    _GLOBAL_RNG_FNS,
    _WALLCLOCK,
    _in_wallclock_module,
)

#: kind -> witness chain (first hop is the source, later hops are call
#: edges); "param:N" pseudo-kinds appear only inside summaries
Taint = Dict[str, Tuple[str, ...]]

#: taint kinds that are reportable at a sink
_REPORTABLE = ("wallclock", "rng", "set-order")

#: longest witness chain kept on a finding
MAX_WITNESS_HOPS = 6

_SET_ORDER_CONVERTERS = {"list", "tuple", "iter", "reversed"}
_SET_ORDER_SANITIZERS = {"sorted", "min", "max", "sum"}
_RNG_EXTRA = {"os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_bytes",
              "secrets.token_hex", "secrets.randbits"}

#: event-visible call sinks: the argument becomes simulated behaviour
_CALL_SINKS = {"timeout", "succeed"}


def _merge(into: Taint, other: Taint) -> Taint:
    for kind, witness in other.items():
        into.setdefault(kind, witness)
    return into


def _with_hop(taint: Taint, hop: str) -> Taint:
    return {kind: (witness + (hop,))[:MAX_WITNESS_HOPS]
            for kind, witness in taint.items()}


def _crossed_call(witness: Tuple[str, ...]) -> bool:
    """Whether the chain includes at least one resolved call edge."""
    return any(hop.startswith("returned by ") for hop in witness)


class _Violation:
    def __init__(self, node: ast.AST, kind: str, message: str,
                 witness: Tuple[str, ...]) -> None:
        self.node = node
        self.kind = kind
        self.message = message
        self.witness = witness


class _FunctionTaint:
    """One pass over a function body: propagate taint, find sinks.

    In ``symbolic`` mode (summary computation) parameters carry
    ``param:N`` pseudo-taint and return taints are collected; in
    concrete mode sinks are checked and violations recorded.
    """

    def __init__(self, analyzer: "TaintAnalyzer", func: FunctionInfo,
                 symbolic: bool) -> None:
        self.analyzer = analyzer
        self.func = func
        self.symbolic = symbolic
        self.env: Dict[str, Taint] = {}
        self.returns: Taint = {}
        self.violations: List[_Violation] = []
        if symbolic:
            params = self._callee_params(func)
            for index, param in enumerate(params):
                self.env[param] = {
                    f"param:{index}":
                        (f"parameter `{param}` of `{func.name}()`",)}

    @staticmethod
    def _callee_params(func: FunctionInfo) -> List[str]:
        params = func.params
        if func.class_name is not None and params and \
                params[0] in ("self", "cls"):
            return params[1:]
        return params

    def _where(self, node: ast.AST) -> str:
        return f"{self.func.module.path}:{getattr(node, 'lineno', 1)}"

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        for stmt in ordered_body(self.func.node):
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.infer(stmt.value)
            for target in stmt.targets:
                self.store(target, stmt, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.store(stmt.target, stmt, self.infer(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.infer(stmt.value)
            existing = self.env.get(stmt.target.id, {}) \
                if isinstance(stmt.target, ast.Name) else {}
            self.store(stmt.target, stmt, _merge(dict(taint), existing))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _merge(self.returns, self.infer(stmt.value))
        else:
            for field_name in ("value", "test", "iter"):
                value = getattr(stmt, field_name, None)
                if isinstance(value, ast.expr):
                    self.infer(value)

    def store(self, target: ast.expr, stmt: ast.stmt, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            if taint:
                self.env[target.id] = taint
            else:
                self.env.pop(target.id, None)
            return
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self.store(element, stmt, taint)
            return
        # attribute / subscript store: sim-visible state
        described = ast.unparse(target)
        self.check_sink(stmt, taint, f"stored into `{described}`")

    # -- sinks -------------------------------------------------------------

    def check_sink(self, node: ast.AST, taint: Taint, what: str) -> None:
        if self.symbolic:
            return
        for kind in _REPORTABLE:
            witness = taint.get(kind)
            if witness is None or not _crossed_call(witness):
                continue
            if kind == "wallclock" and \
                    _in_wallclock_module(self.func.module.path):
                continue    # sanctioned module storing its own clock
            self.violations.append(_Violation(
                node, kind,
                f"{kind} value reaches sim-visible state: {what} in "
                f"`{self.func.name}()`; the witness path shows where the "
                "nondeterminism enters",
                witness=(witness + (f"{what} ({self._where(node)})",)
                         )[:MAX_WITNESS_HOPS]))

    # -- expression inference ----------------------------------------------

    def infer(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return {"setish": (f"set literal ({self._where(node)})",)}
        if isinstance(node, ast.DictComp):
            self.infer(node.value)
            return {}
        if isinstance(node, ast.BinOp):
            return _merge(self.infer(node.left), self.infer(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BoolOp):
            taint: Taint = {}
            for value in node.values:
                _merge(taint, self.infer(value))
            return taint
        if isinstance(node, ast.Compare):
            taint = self.infer(node.left)
            for comparator in node.comparators:
                self.infer(comparator)
            return {}       # a comparison result is a bool, order-free
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            return _merge(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List)):
            taint = {}
            for element in node.elts:
                _merge(taint, self.infer(element))
            return taint
        if isinstance(node, ast.Dict):
            taint = {}
            for value in node.values:
                if value is not None:
                    _merge(taint, self.infer(value))
            return taint
        if isinstance(node, ast.Subscript):
            self.infer(node.slice)
            return self.infer(node.value)
        if isinstance(node, ast.Attribute):
            return self.infer(node.value)
        if isinstance(node, ast.JoinedStr):
            taint = {}
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    _merge(taint, self.infer(value.value))
            return taint
        if isinstance(node, ast.FormattedValue):
            return self.infer(node.value)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)) and \
                node.value is not None:
            return self.infer(node.value)
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for gen in node.generators:
                iter_taint = self.infer(gen.iter)
                if "setish" in iter_taint:
                    return {"set-order":
                            iter_taint["setish"] +
                            (f"materialized in hash order "
                             f"({self._where(node)})",)}
            return {}
        return {}

    def _infer_call(self, node: ast.Call) -> Taint:
        dotted = dotted_name(node.func)
        expanded = expand_alias(dotted, self.func.module.aliases) \
            if dotted else None
        leaf = expanded.split(".")[-1] if expanded else None

        source = self._source_taint(node, expanded)
        if source is not None:
            return source

        arg_taint: Taint = {}
        for arg in node.args:
            _merge(arg_taint, self.infer(arg))
        for kw in node.keywords:
            _merge(arg_taint, self.infer(kw.value))

        if leaf == "len":
            return {}
        if leaf in _SET_ORDER_SANITIZERS:
            return {kind: witness for kind, witness in arg_taint.items()
                    if kind not in ("setish", "set-order")}
        if leaf in ("set", "frozenset"):
            return {"setish": (f"`{leaf}()` ({self._where(node)})",)}
        if leaf in _SET_ORDER_CONVERTERS and node.args:
            first = self.infer(node.args[0])
            if "setish" in first:
                return {"set-order":
                        first["setish"] +
                        (f"`{leaf}()` materializes hash order "
                         f"({self._where(node)})",)}

        # call sinks: the argument becomes simulated behaviour
        if leaf in _CALL_SINKS and node.args:
            self.check_sink(node, self.infer(node.args[0]),
                            f"passed to `{leaf}()`")

        targets = self.analyzer.project.resolve_call(self.func, node)
        if len(targets) == 1:
            return self._apply_summary(node, targets[0])

        # unresolved: conservatively pass argument taint through
        if arg_taint and leaf is not None:
            return _with_hop(arg_taint,
                             f"through `{leaf}()` ({self._where(node)})")
        return arg_taint

    def _source_taint(self, node: ast.Call,
                      expanded: Optional[str]) -> Optional[Taint]:
        if expanded is None:
            return None
        where = self._where(node)
        if expanded in _WALLCLOCK:
            return {"wallclock":
                    (f"wall-clock read `{expanded}()` ({where})",)}
        if expanded in _RNG_EXTRA:
            return {"rng": (f"entropy read `{expanded}()` ({where})",)}
        if expanded == "random.Random" and not node.args and \
                not node.keywords:
            return {"rng": (f"unseeded `random.Random()` ({where})",)}
        if expanded.startswith("random.") and \
                expanded.split(".", 1)[1] in _GLOBAL_RNG_FNS:
            return {"rng":
                    (f"global-RNG draw `{expanded}()` ({where})",)}
        return None

    def _apply_summary(self, node: ast.Call,
                       callee: FunctionInfo) -> Taint:
        summary = self.analyzer.summary(callee)
        if not summary:
            return {}
        hop = f"returned by `{callee.name}()` ({self._where(node)})"
        result: Taint = {}
        params = self._callee_params(callee)
        for kind, witness in summary.items():
            if kind.startswith("param:"):
                index = int(kind.split(":", 1)[1])
                arg = self._param_argument(node, params, index)
                if arg is not None:
                    _merge(result, _with_hop(self.infer(arg), hop))
            else:
                result.setdefault(kind, (witness + (hop,))[:MAX_WITNESS_HOPS])
        return result

    @staticmethod
    def _param_argument(node: ast.Call, params: List[str],
                        index: int) -> Optional[ast.expr]:
        if index < len(node.args):
            return node.args[index]
        if index < len(params):
            wanted = params[index]
            for kw in node.keywords:
                if kw.arg == wanted:
                    return kw.value
        return None


class TaintAnalyzer:
    """Project-wide taint with memoized, cycle-safe return summaries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._summaries: Dict[str, Taint] = {}
        self._in_flight: Set[str] = set()

    def summary(self, func: FunctionInfo) -> Taint:
        """Return-taint summary: concrete kinds + ``param:N`` flows."""
        if func.qualname in self._summaries:
            return self._summaries[func.qualname]
        if func.qualname in self._in_flight:
            return {}       # recursion: approximate with no taint
        self._in_flight.add(func.qualname)
        try:
            walker = _FunctionTaint(self, func, symbolic=True)
            walker.run()
            self._summaries[func.qualname] = walker.returns
            return walker.returns
        finally:
            self._in_flight.discard(func.qualname)

    def check(self) -> Iterator[Tuple[FunctionInfo, _Violation]]:
        for func in self.project.all_functions():
            walker = _FunctionTaint(self, func, symbolic=False)
            walker.run()
            for violation in walker.violations:
                yield func, violation


@project_rule("SIM210", "determinism-taint",
              "A wall-clock, global-RNG or set-iteration-order value "
              "travelling through helper returns into sim-visible state "
              "(an attribute store, a timeout() delay, a succeed() "
              "payload). The per-file rules see only the call site; this "
              "one follows the value across resolved call edges and "
              "prints the witness path. The sanctioned wall-clock modules "
              "(SIM110's list) may keep their own clock readings, but a "
              "reading that escapes them into ordinary model state is "
              "still a leak.")
def check_determinism_taint(project: Project) -> Iterator[ProjectSite]:
    analyzer = TaintAnalyzer(project)
    for func, violation in analyzer.check():
        node = violation.node
        yield ProjectSite(
            path=func.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=violation.message,
            witness=violation.witness)

"""Physical links between host and storage: PCIe, SATA PHY, UFS M-PHY.

Each link models raw lane bandwidth, encoding/packet efficiency, a
propagation latency, and (for PCIe) MMIO register access costs used by
doorbell writes.  Links serialize transfers per direction.
"""

from __future__ import annotations

from repro.common.units import GB, MB, transfer_ns
from repro.sim import Resource


class _Link:
    """Shared base: a full-duplex serial link."""

    def __init__(self, sim, bandwidth: float, efficiency: float,
                 latency_ns: int, name: str) -> None:
        self.sim = sim
        self.raw_bandwidth = bandwidth
        self.efficiency = efficiency
        self.latency_ns = latency_ns
        self.name = name
        self._tx = Resource(sim, 1, name=f"{name}-tx")  # host -> device
        self._rx = Resource(sim, 1, name=f"{name}-rx")  # device -> host
        self.bytes_tx = 0
        self.bytes_rx = 0

    @property
    def effective_bandwidth(self) -> float:
        return self.raw_bandwidth * self.efficiency

    def _move(self, lane: Resource, nbytes: int):
        if nbytes <= 0:
            return
        # the lane is occupied for the serialization time only; the
        # propagation latency overlaps with other in-flight packets
        yield lane.acquire()
        try:
            yield self.sim.timeout(
                transfer_ns(nbytes, self.effective_bandwidth))
        finally:
            lane.release()
        yield self.sim.timeout(self.latency_ns)

    def send(self, nbytes: int):
        """Process: host-to-device transfer."""
        yield from self._move(self._tx, nbytes)
        self.bytes_tx += nbytes

    def receive(self, nbytes: int):
        """Process: device-to-host transfer."""
        yield from self._move(self._rx, nbytes)
        self.bytes_rx += nbytes

    def utilization(self) -> float:
        return max(self._tx.utilization(), self._rx.utilization())


class PcieLink(_Link):
    """PCIe: MCH-attached, used by NVMe and OCSSD (s-type storage)."""

    _GEN_GBPS_PER_LANE = {1: 0.25 * GB, 2: 0.5 * GB, 3: 0.985 * GB, 4: 1.97 * GB}

    def __init__(self, sim, gen: int = 3, lanes: int = 4,
                 mmio_write_ns: int = 250, mmio_read_ns: int = 900) -> None:
        if gen not in self._GEN_GBPS_PER_LANE:
            raise ValueError(f"unsupported PCIe generation {gen}")
        bandwidth = self._GEN_GBPS_PER_LANE[gen] * lanes
        # TLP header overhead on top of line coding (already in per-lane rate)
        super().__init__(sim, bandwidth, efficiency=0.85, latency_ns=500,
                         name=f"pcie-g{gen}x{lanes}")
        self.gen = gen
        self.lanes = lanes
        self.mmio_write_ns = mmio_write_ns
        self.mmio_read_ns = mmio_read_ns

    def mmio_write(self):
        """Process: posted register write (e.g. a doorbell ring)."""
        yield self.sim.timeout(self.mmio_write_ns)

    def mmio_read(self):
        """Process: non-posted register read (round trip)."""
        yield self.sim.timeout(self.mmio_read_ns)


class SataLink(_Link):
    """SATA 3.0 PHY: ICH-attached, 6 Gb/s with 8b/10b coding.

    Unlike PCIe, the SATA link is effectively half-duplex at the FIS
    level: one frame at a time in either direction, so tx and rx share a
    single lane — a real contributor to the h-type single-I/O-path
    bottleneck the paper discusses.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim, bandwidth=600 * MB, efficiency=0.93,
                         latency_ns=700, name="sata3")
        self._rx = self._tx  # half duplex: one shared lane


class UfsLink(_Link):
    """UFS 2.1 M-PHY: two HS-G3 lanes, ~1166 MB/s raw."""

    def __init__(self, sim, lanes: int = 2) -> None:
        super().__init__(sim, bandwidth=583 * MB * lanes, efficiency=0.9,
                         latency_ns=600, name=f"ufs-mphy-x{lanes}")

"""The live-observability layer: the NDJSON run journal, journal-aware
fleet status, ``watch`` with streaming partial reports, and the
invariants that keep all of it outside the determinism contract —
result payloads byte-identical with journaling on or off, and a
partial report that converges byte-identically to the final one
(``docs/FLEET.md``, ``docs/OBSERVABILITY.md``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.fleet import (
    ResultStore,
    SweepSpec,
    journal_status,
    merge_results,
    render_status,
    run_sweep,
    watch,
    write_fleet_report,
    write_partial_report,
)
from repro.fleet.runner import run_one_job
from repro.fleet.scenarios import SCENARIOS, builtin_specs
from repro.fleet.spec import Job, config_hash
from repro.obs import journal as journal_mod
from repro.obs.journal import (
    JOURNAL_NAME,
    RunJournal,
    active_job,
    journal_path_for,
)
from repro.sim import Simulator

#: tiny two-config sweep, same shape as tests/test_fleet.py
TINY = SweepSpec(
    name="tiny", scenario="fio",
    base={"preset": "intel750", "rw": "randread", "total_ios": 60,
          "iodepth": 4, "bs": 4096},
    axes={"channels": (2, 4)})

EVENT_KINDS = ("job_started", "heartbeat", "epoch_sampled",
               "job_completed", "job_failed")


# -- the journal itself -------------------------------------------------------

class TestRunJournal:
    def test_append_and_read_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "j.ndjson")
        journal.append("job_started", job="abc", pid=1)
        journal.append("job_completed", job="abc", pid=1)
        events = journal.events()
        assert [e["event"] for e in events] == \
            ["job_started", "job_completed"]
        assert all("wall_ts" in e for e in events)

    def test_lines_are_single_json_documents(self, tmp_path):
        journal = RunJournal(tmp_path / "j.ndjson")
        journal.append("heartbeat", job="abc", sim_ns=5)
        for line in journal.path.read_text().splitlines():
            assert json.loads(line)["job"] == "abc"

    def test_reader_skips_torn_trailing_line(self, tmp_path):
        journal = RunJournal(tmp_path / "j.ndjson")
        journal.append("job_started", job="abc")
        with open(journal.path, "a") as handle:
            handle.write('{"event": "job_comp')     # killed mid-write
        assert [e["event"] for e in journal.events()] == ["job_started"]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert RunJournal(tmp_path / "nope.ndjson").events() == []

    def test_journal_path_sits_at_store_root(self, tmp_path):
        assert journal_path_for(tmp_path) == tmp_path / JOURNAL_NAME


# -- journaled sweeps ---------------------------------------------------------

@pytest.fixture(scope="module")
def journaled(tmp_path_factory):
    """One journaled inline run (heartbeat_s=0: every epoch emits)."""
    store = ResultStore(tmp_path_factory.mktemp("watch-j1"))
    summary = run_sweep(TINY, store, jobs=1, heartbeat_s=0.0)
    return store, summary


class TestJournaledSweep:
    def test_all_lifecycle_kinds_are_emitted(self, journaled):
        store, _summary = journaled
        events = RunJournal(journal_path_for(store.root)).events()
        kinds = {e["event"] for e in events}
        assert {"job_started", "heartbeat", "epoch_sampled",
                "job_completed"} <= kinds
        assert all(e["event"] in EVENT_KINDS for e in events)

    def test_events_carry_both_clocks(self, journaled):
        store, _summary = journaled
        events = RunJournal(journal_path_for(store.root)).events()
        for event in events:
            assert isinstance(event["wall_ts"], float), event
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats and all(e["sim_ns"] > 0 and e["events"] > 0
                             for e in beats)

    def test_completed_events_record_deterministic_facts(self, journaled):
        store, _summary = journaled
        events = RunJournal(journal_path_for(store.root)).events()
        completed = [e for e in events if e["event"] == "job_completed"]
        assert len(completed) == 2
        for event in completed:
            stored = store.get(event["job"])["result"]
            assert event["events_processed"] == stored["events_processed"]
            assert event["sim_time_ns"] == stored["sim_time_ns"]
            assert event["wall_duration_s"] >= 0.0

    def test_journal_never_enters_store_hashes(self, journaled):
        store, _summary = journaled
        assert journal_path_for(store.root).is_file()
        assert len(store.hashes()) == 2      # journal is invisible

    def test_payloads_identical_with_journal_off(self, journaled,
                                                 tmp_path):
        """The golden invariance pin: journaling cannot touch results."""
        store_on, _summary = journaled
        store_off = ResultStore(tmp_path / "no-journal")
        run_sweep(TINY, store_off, jobs=1, journal=False)
        assert not journal_path_for(store_off.root).exists()
        assert store_on.hashes() == store_off.hashes()
        for job_hash in store_on.hashes():
            assert store_on.path_for(job_hash).read_bytes() == \
                store_off.path_for(job_hash).read_bytes(), job_hash

    def test_payloads_identical_with_profiler_on(self, journaled,
                                                 tmp_path):
        store_on, _summary = journaled
        store_prof = ResultStore(tmp_path / "profiled")
        run_sweep(TINY, store_prof, jobs=1, heartbeat_s=0.0, profile=True)
        for job_hash in store_on.hashes():
            assert store_on.path_for(job_hash).read_bytes() == \
                store_prof.path_for(job_hash).read_bytes(), job_hash
        completed = [e for e
                     in RunJournal(journal_path_for(store_prof.root)).events()
                     if e["event"] == "job_completed"]
        assert completed and all("profile" in e for e in completed)
        assert all(sum(e["profile"].values()) > 0 for e in completed)

    def test_no_context_leaks_after_a_sweep(self, journaled):
        assert active_job() is None
        assert journal_mod._context is None


# -- worker crash post-mortems ------------------------------------------------

def _boom(params, seed):
    """Scenario that fails inside the engine, mid-process."""
    sim = Simulator()

    def proc():
        yield sim.timeout(10)
        raise RuntimeError("injected crash")

    sim.run_process(proc())


class TestFailurePath:
    @pytest.fixture()
    def boom_job(self):
        SCENARIOS["boom"] = _boom
        params = {"scenario": "boom"}
        yield Job(params=params, config_hash=config_hash(params))
        del SCENARIOS["boom"]

    def test_crash_writes_journal_event_and_flightrec(self, boom_job,
                                                      tmp_path):
        journal_path = tmp_path / JOURNAL_NAME
        with pytest.raises(RuntimeError, match="injected crash"):
            run_one_job(boom_job, journal_path=journal_path)
        events = RunJournal(journal_path).events()
        assert [e["event"] for e in events][-1] == "job_failed"
        failed = events[-1]
        assert failed["error"] == "RuntimeError"
        assert "injected crash" in failed["message"]
        assert failed["flightrec"], "no post-mortem recorded"
        for name in failed["flightrec"]:
            dump = json.loads((tmp_path / name).read_text())
            assert dump["error"]["type"] == "RuntimeError"

    def test_crash_leaves_no_global_state(self, boom_job, tmp_path):
        from repro.obs.telemetry import telemetry_enabled
        with pytest.raises(RuntimeError):
            run_one_job(boom_job, journal_path=tmp_path / JOURNAL_NAME)
        assert active_job() is None
        assert not telemetry_enabled()

    def test_failed_job_shows_in_journal_status(self, boom_job, tmp_path):
        spec = SweepSpec(name="boomsweep", scenario="boom",
                         base={"scenario": "boom"}, axes={})
        store = ResultStore(tmp_path)
        with pytest.raises(RuntimeError):
            run_one_job(boom_job, journal_path=journal_path_for(store.root))
        doc = journal_status(spec, store)
        assert doc["done"] == 0 and doc["pending"] == []
        assert [f["job"] for f in doc["failed"]] == [boom_job.config_hash]
        assert "RuntimeError" in render_status(doc)


# -- journal-aware status and watch -------------------------------------------

class TestJournalStatus:
    def test_running_vs_pending_vs_done(self, journaled, tmp_path):
        store_done, _summary = journaled
        hashes = store_done.hashes()
        store = ResultStore(tmp_path)
        # one job done, one "running" (started, no terminal event)
        done_hash, running_hash = hashes
        doc_done = store_done.get(done_hash)
        store.put(done_hash, doc_done["params"], doc_done["result"])
        journal = RunJournal(journal_path_for(store.root))
        journal.append("job_started", job=running_hash, pid=4242, sim_ns=0)
        journal.append("heartbeat", job=running_hash, pid=4242,
                       sim_ns=1234, events=56)
        doc = journal_status(TINY, store)
        assert doc["done"] == 1 and doc["pending"] == []
        assert [r["job"] for r in doc["running"]] == [running_hash]
        runner = doc["running"][0]
        assert runner["pid"] == 4242 and runner["sim_ns"] == 1234
        assert runner["beat_age_s"] >= 0.0
        text = render_status(doc)
        assert "1/2 done" in text and "RUN" in text

    def test_store_trumps_stale_journal(self, journaled):
        """A resumed sweep's store beats an old running/failed record."""
        store, _summary = journaled
        job_hash = store.hashes()[0]
        journal = RunJournal(journal_path_for(store.root))
        journal.append("job_failed", job=job_hash, error="OldError",
                       message="stale")
        doc = journal_status(TINY, store)
        assert doc["done"] == 2 and doc["failed"] == []

    def test_unknown_jobs_in_journal_are_ignored(self, journaled):
        store, _summary = journaled
        journal = RunJournal(journal_path_for(store.root))
        journal.append("job_started", job="f00d" * 16, pid=1)
        doc = journal_status(TINY, store)
        assert doc["done"] == 2 and doc["running"] == []

    def test_eta_extrapolates_from_completed_durations(self, tmp_path):
        store = ResultStore(tmp_path)
        journal = RunJournal(journal_path_for(store.root))
        hashes = sorted(job.config_hash for job in TINY.expand())
        journal.append("job_completed", job=hashes[0], wall_duration_s=3.0)
        doc = journal_status(TINY, store)
        assert doc["eta_s"] == pytest.approx(6.0)    # 2 pending x 3s


class TestWatch:
    def test_watch_once_snapshot(self, journaled, capsys):
        store, _summary = journaled
        doc = watch(TINY, store, emit=print, once=True)
        assert doc["done"] == 2
        assert "2/2 done" in capsys.readouterr().out

    def test_watch_loops_until_settled(self, journaled):
        store, _summary = journaled
        lines = []
        naps = []
        doc = watch(TINY, store, emit=lines.append,
                    sleep=naps.append, interval_s=0.5)
        assert doc["done"] == 2
        assert len(lines) == 1 and naps == []    # already settled

    def test_watch_json_lines_parse(self, journaled):
        store, _summary = journaled
        lines = []
        watch(TINY, store, emit=lines.append, once=True, as_json=True)
        assert json.loads(lines[0])["done"] == 2

    def test_watch_json_schema_is_pinned(self, journaled):
        """The stable fleet.watch/1 document: fixed key set, sorted-key
        encoding, journal path and an always-present eta_s."""
        store, _summary = journaled
        lines = []
        watch(TINY, store, emit=lines.append, once=True, as_json=True)
        doc = json.loads(lines[0])
        assert doc["schema"] == "fleet.watch/1"
        assert set(doc) == {"schema", "spec", "planned", "journal", "done",
                            "running", "failed", "pending", "missing",
                            "eta_s"}
        assert doc["journal"] == str(journal_path_for(store.root))
        assert doc["eta_s"] is None          # settled sweep: nothing left
        assert lines[0] == json.dumps(doc, sort_keys=True)  # sorted keys

    def test_eta_s_is_none_until_a_job_completes(self, tmp_path):
        doc = journal_status(TINY, ResultStore(tmp_path))
        assert doc["eta_s"] is None
        assert set(doc["pending"]) == set(doc["missing"])


# -- partial-report convergence -----------------------------------------------

class TestPartialConvergence:
    def test_partial_converges_byte_identically(self, journaled, tmp_path):
        """The tentpole pin: a watch partial taken mid-sweep, regenerated
        once the store completes, equals the final report byte-for-byte."""
        store_full, _summary = journaled
        store = ResultStore(tmp_path / "store")
        hashes = store_full.hashes()
        first = store_full.get(hashes[0])
        store.put(hashes[0], first["params"], first["result"])

        mid = tmp_path / "partial.md"
        doc_mid = write_partial_report(TINY, store, mid)
        assert doc_mid["merged"] == 1 and len(doc_mid["missing"]) == 1
        mid_bytes = mid.read_bytes()

        second = store_full.get(hashes[1])
        store.put(hashes[1], second["params"], second["result"])
        write_partial_report(TINY, store, mid)
        final = tmp_path / "final.md"
        write_fleet_report(final, merge_results(TINY, store))
        assert mid.read_bytes() == final.read_bytes()
        assert mid.read_bytes() != mid_bytes     # it really did stream

    def test_watch_writes_the_partial_artifact(self, journaled, tmp_path):
        store, _summary = journaled
        out = tmp_path / "live.md"
        watch(TINY, store, emit=lambda _line: None, once=True,
              partial_out=out)
        final = tmp_path / "final.md"
        write_fleet_report(final, merge_results(TINY, store))
        assert out.read_bytes() == final.read_bytes()


# -- the CLI surface ----------------------------------------------------------

def _run_cli(*args):
    src_dir = Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "repro.fleet", *args],
        capture_output=True, text=True, env=env, timeout=600)


class TestCli:
    def test_run_journals_and_watch_once_reports(self, tmp_path):
        store = tmp_path / "store"
        proc = _run_cli("run", "--builtin", "smoke4", "--store", str(store),
                        "--jobs", "2")
        assert proc.returncode == 0, proc.stderr
        assert (store / JOURNAL_NAME).is_file()

        out = tmp_path / "partial.md"
        proc = _run_cli("watch", "--builtin", "smoke4", "--store",
                        str(store), "--once", "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "4/4 done" in proc.stdout
        assert out.is_file()

    def test_status_separates_failed_from_pending(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        journal = RunJournal(journal_path_for(store))
        some_hash = sorted(
            job.config_hash
            for job in builtin_specs()["smoke4"].expand())[0]
        journal.append("job_failed", job=some_hash, error="RuntimeError",
                       message="injected", flightrec=[])
        proc = _run_cli("status", "--builtin", "smoke4",
                        "--store", str(store))
        assert proc.returncode == 1
        assert "1 failed" in proc.stdout
        assert "3 pending" in proc.stdout
        assert "RuntimeError" in proc.stdout

    def test_run_no_journal_opts_out(self, tmp_path):
        store = tmp_path / "store"
        proc = _run_cli("run", "--builtin", "smoke4", "--store", str(store),
                        "--jobs", "1", "--no-journal")
        assert proc.returncode == 0, proc.stderr
        assert not (store / JOURNAL_NAME).exists()

"""The simflow whole-project framework: module resolution, the call
graph, cross-file unit/taint/lock analysis, the adoption baseline, the
versioned ``--json`` report and ``lint --changed`` (docs/ANALYSIS.md,
"The dataflow pass").
"""

import ast
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_paths, lint_source
from repro.analysis.baseline import Baseline
from repro.analysis.findings import META_RULE, Finding
from repro.analysis.flow import Project, module_name_for
from repro.analysis.flow.unitcheck import Unit, unit_of_identifier
from repro.analysis.registry import iter_python_files


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _project(*sources):
    """Build a Project from (path, source) pairs."""
    return Project([(path, ast.parse(textwrap.dedent(text), filename=path))
                    for path, text in sources])


def _unsup(findings):
    return [f for f in findings if not f.suppressed]


# -- module naming and call resolution ----------------------------------------

class TestProjectModel:
    def test_module_name_rooted_at_package(self):
        assert module_name_for("src/repro/sim/engine.py") == \
            "repro.sim.engine"
        assert module_name_for("/abs/co/src/repro/obs/journal.py") == \
            "repro.obs.journal"
        assert module_name_for("tests/test_x.py") == "tests.test_x"
        assert module_name_for("/tmp/scratch.py") == "scratch"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"

    def test_resolves_local_and_imported_calls(self):
        project = _project(
            ("a.py", """
                def helper_ns():
                    return 5
                def caller():
                    return helper_ns()
             """),
            ("b.py", """
                from a import helper_ns
                def other():
                    return helper_ns()
             """))
        caller = project.functions["a.caller"]
        call = next(n for n in ast.walk(caller.node)
                    if isinstance(n, ast.Call))
        assert [f.qualname for f in project.resolve_call(caller, call)] == \
            ["a.helper_ns"]
        other = project.functions["b.other"]
        call = next(n for n in ast.walk(other.node)
                    if isinstance(n, ast.Call))
        assert [f.qualname for f in project.resolve_call(other, call)] == \
            ["a.helper_ns"]

    def test_resolves_self_method_through_inheritance(self):
        project = _project(
            ("base.py", """
                class Base:
                    def tick(self):
                        return 1
             """),
            ("child.py", """
                from base import Base
                class Child(Base):
                    def run(self):
                        return self.tick()
             """))
        run = project.functions["child.Child.run"]
        call = next(n for n in ast.walk(run.node)
                    if isinstance(n, ast.Call))
        assert [f.qualname for f in project.resolve_call(run, call)] == \
            ["base.Base.tick"]

    def test_ambiguous_method_names_stay_unresolved(self):
        mods = [(f"m{i}.py", f"""
                class C{i}:
                    def frob(self):
                        return {i}
             """) for i in range(6)]
        mods.append(("user.py", """
                def use(obj):
                    return obj.frob()
             """))
        project = _project(*mods)
        use = project.functions["user.use"]
        call = next(n for n in ast.walk(use.node)
                    if isinstance(n, ast.Call))
        assert project.resolve_call(use, call) == []


# -- the unit lattice ---------------------------------------------------------

class TestUnitInference:
    def test_suffix_and_exact_names(self):
        assert unit_of_identifier("lat_ns") == Unit("ns")
        assert unit_of_identifier("nbytes") == Unit("bytes")
        assert unit_of_identifier("slba") == Unit("sectors")
        assert unit_of_identifier("first_lpn") == Unit("pages")
        assert unit_of_identifier("clk_hz") == Unit("hz")
        assert unit_of_identifier("wait_us") == Unit("us")
        assert unit_of_identifier("plain_counter") is None

    def test_per_names_declare_ratios(self):
        assert unit_of_identifier("sectors_per_page") == \
            Unit("sectors", "pages")
        assert unit_of_identifier("ns_per_byte") == Unit("ns", "bytes")
        assert unit_of_identifier("pages_per_chunk") is None

    def test_ratio_division_converts_units(self):
        # sectors // sectors_per_page is pages: the pblk idiom is clean
        findings = lint_source("conv.py", textwrap.dedent("""
            def to_lpn(slba, sectors_per_page):
                first_lpn = slba // sectors_per_page
                return first_lpn
        """))
        assert _unsup(findings) == [], \
            "\n".join(f.format() for f in findings)

    def test_units_constants_convert_scales(self):
        findings = lint_source("conv.py", textwrap.dedent("""
            from repro.common.units import US
            def wait_ns(delay_us):
                return delay_us * US
        """))
        assert _unsup(findings) == []

    def test_cross_file_return_summary_flags_mixture(self):
        findings = lint_source("mix.py", textwrap.dedent("""
            def sense_latency_ns():
                return 59_975
            def total(nbytes):
                return sense_latency_ns() + nbytes
        """))
        assert {f.rule for f in _unsup(findings)} == {"SIM201"}

    def test_cross_file_unit_flow_via_lint_paths(self, tmp_path):
        _write(tmp_path, "timing.py", """
            def sense_ns():
                return 59_975
        """)
        _write(tmp_path, "use.py", """
            from timing import sense_ns
            def broken(nbytes):
                return sense_ns() + nbytes
        """)
        result = lint_paths([str(tmp_path)])
        assert {f.rule for f in result.unsuppressed} == {"SIM201"}
        assert result.unsuppressed[0].path.endswith("use.py")


# -- determinism taint --------------------------------------------------------

class TestTaint:
    def test_wallclock_escaping_sanctioned_module_is_flagged(self, tmp_path):
        _write(tmp_path, "repro/obs/journal.py", """
            import time
            def wall_now():
                return time.time()  # simlint: disable=SIM101 -- sanctioned module
        """)
        _write(tmp_path, "repro/model.py", """
            from repro.obs.journal import wall_now
            class Model:
                def poke(self):
                    self.stamp = wall_now()
        """)
        result = lint_paths([str(tmp_path)])
        sim210 = [f for f in result.unsuppressed if f.rule == "SIM210"]
        assert len(sim210) == 1
        assert sim210[0].path.endswith("model.py")
        assert any("wall_now" in hop for hop in sim210[0].witness)

    def test_sanctioned_module_may_store_its_own_clock(self, tmp_path):
        _write(tmp_path, "repro/obs/journal.py", """
            import time
            def wall_now():
                return time.time()  # simlint: disable=SIM101 -- sanctioned module
            class Journal:
                def stamp(self):
                    self.t0 = wall_now()
        """)
        result = lint_paths([str(tmp_path)])
        assert [f.rule for f in result.unsuppressed] == []

    def test_direct_same_function_store_is_not_reported_twice(self):
        # the per-file rules own the intraprocedural case
        findings = lint_source("repro/bench/direct.py", textwrap.dedent("""
            import time
            class T:
                def mark(self):
                    self.t = time.time()  # simlint: disable=SIM101 -- bench
        """))
        assert all(f.rule != "SIM210" for f in _unsup(findings))

    def test_sorted_sanitizes_set_order(self):
        findings = lint_source("s.py", textwrap.dedent("""
            class Agg:
                def _tags(self):
                    return sorted({"a", "b"})
                def snap(self):
                    self.order = self._tags()
        """))
        assert _unsup(findings) == []


# -- lock order ---------------------------------------------------------------

class TestLockOrder:
    def test_param_passed_lock_resolves_at_call_site(self):
        # the backend's _traced_acquire pattern: the lock is an argument
        findings = lint_source("locks.py", textwrap.dedent("""
            class B:
                def _slow_acquire(self, resource):
                    yield resource.acquire()  # simlint: disable=SIM106 -- helper; caller releases

                def read(self, sim):
                    yield from self._slow_acquire(self.die)
                    try:
                        yield from self._slow_acquire(self.channel)
                        try:
                            yield sim.timeout(1)
                        finally:
                            self.channel.release()
                    finally:
                        self.die.release()

                def program(self, sim):
                    yield from self._slow_acquire(self.channel)
                    try:
                        yield from self._slow_acquire(self.die)
                        try:
                            yield sim.timeout(1)
                        finally:
                            self.die.release()
                    finally:
                        self.channel.release()
        """))
        sim220 = [f for f in _unsup(findings) if f.rule == "SIM220"]
        assert len(sim220) == 1
        assert "B.die" in sim220[0].message
        assert "B.channel" in sim220[0].message

    def test_consistent_order_is_clean_and_multi_unit_is_not_a_cycle(self):
        findings = lint_source("locks.py", textwrap.dedent("""
            class B:
                def multiplane(self, sim, units):
                    for unit in units:
                        yield self.die.acquire()   # same class: self-edge
                    try:
                        yield self.channel.acquire()
                        try:
                            yield sim.timeout(1)
                        finally:
                            self.channel.release()
                    finally:
                        self.die.release()  # simlint: disable=SIM106 -- fixture releases one token for brevity
        """))
        assert all(f.rule != "SIM220" for f in _unsup(findings))


# -- the adoption baseline ----------------------------------------------------

class TestBaseline:
    def _finding(self, rule="SIM210", path="tests/test_x.py", line=7):
        return Finding(rule=rule, path=path, line=line, col=0,
                       message="m")

    def test_entry_suppresses_matching_finding_with_reason(self):
        baseline = Baseline.parse("b.txt", textwrap.dedent("""
            # comment
            SIM210 tests/test_x.py -- replay stores wall time by design
        """))
        out = baseline.apply([self._finding()],
                             linted_paths={"tests/test_x.py"})
        assert out[0].suppressed
        assert "replay stores wall time" in out[0].reason

    def test_line_scoped_entry_matches_only_that_line(self):
        baseline = Baseline.parse(
            "b.txt", "SIM210 tests/test_x.py:7 -- pinned\n")
        hit, miss = self._finding(line=7), self._finding(line=9)
        out = baseline.apply([hit, miss], linted_paths=set())
        assert out[0].suppressed and not out[1].suppressed

    def test_reasonless_entry_is_sim100(self):
        baseline = Baseline.parse("b.txt", "SIM210 tests/test_x.py\n")
        out = baseline.apply([], linted_paths=set())
        assert [f.rule for f in out] == [META_RULE]
        assert "reason" in out[0].message

    def test_unparseable_line_is_sim100(self):
        baseline = Baseline.parse("b.txt", "what even is this\n")
        out = baseline.apply([], linted_paths=set())
        assert [f.rule for f in out] == [META_RULE]

    def test_stale_entry_for_linted_file_is_sim100(self):
        baseline = Baseline.parse(
            "b.txt", "SIM210 tests/test_x.py -- fixed long ago\n")
        out = baseline.apply([], linted_paths={"tests/test_x.py"})
        assert [f.rule for f in out] == [META_RULE]
        assert "stale" in out[0].message

    def test_out_of_scope_entry_is_left_alone(self):
        baseline = Baseline.parse(
            "b.txt", "SIM210 tests/test_y.py -- other tree\n")
        out = baseline.apply([], linted_paths={"tests/test_x.py"})
        assert out == []

    def test_paths_match_by_suffix(self):
        baseline = Baseline.parse(
            "b.txt", "SIM210 tests/test_x.py -- suffix match\n")
        finding = self._finding(path="/abs/checkout/tests/test_x.py")
        out = baseline.apply([finding], linted_paths=set())
        assert out[0].suppressed

    def test_repo_baseline_entries_all_carry_reasons(self):
        repo_baseline = Path(__file__).parent.parent / \
            "analysis-baseline.txt"
        baseline = Baseline.load(str(repo_baseline))
        assert baseline.malformed == []
        assert baseline.entries
        for entry in baseline.entries:
            assert len(entry.reason) > 10, entry


# -- file iteration -----------------------------------------------------------

def test_iter_python_files_exclude(tmp_path):
    _write(tmp_path, "keep.py", "x = 1\n")
    _write(tmp_path, "fixtures/drop.py", "x = 1\n")
    got = list(iter_python_files([str(tmp_path)], exclude=("fixtures",)))
    assert [os.path.basename(p) for p in got] == ["keep.py"]


# -- the CLI: versioned JSON, --changed ---------------------------------------

def _run_cli(*args, cwd=None):
    src_dir = Path(repro.__file__).parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=120)


FIXTURES = Path(__file__).parent / "analysis_fixtures"


class TestJsonSchema:
    def test_document_shape_and_byte_stability(self):
        """Pin the repro.analysis/1 report: key set, sorted keys, and
        byte-identical output across runs (the fleet.watch/1 contract,
        applied to lint)."""
        proc = _run_cli("lint", "--json", str(FIXTURES / "sim210_bad.py"))
        line = proc.stdout.strip()
        doc = json.loads(line)
        assert set(doc) == {"schema", "findings", "summary"}
        assert doc["schema"] == "repro.analysis/1"
        assert set(doc["summary"]) == {"total", "unsuppressed",
                                       "suppressed", "by_rule",
                                       "exit_code"}
        for finding in doc["findings"]:
            assert set(finding) == {"rule", "location", "path", "line",
                                    "col", "message", "witness",
                                    "suppressed", "reason"}
        sim210 = [f for f in doc["findings"] if f["rule"] == "SIM210"]
        assert sim210 and sim210[0]["witness"], \
            "taint findings must ship their witness path"
        assert sim210[0]["location"].endswith(
            f":{sim210[0]['line']}")
        # byte stability: canonical dump and a second run both match
        assert line == json.dumps(doc, sort_keys=True)
        again = _run_cli("lint", "--json",
                         str(FIXTURES / "sim210_bad.py"))
        assert again.stdout == proc.stdout

    def test_findings_are_sorted(self):
        proc = _run_cli("lint", "--json", str(FIXTURES))
        doc = json.loads(proc.stdout)
        keys = [(f["path"], f["line"], f["col"], f["rule"])
                for f in doc["findings"]]
        assert keys == sorted(keys)


class TestChanged:
    def _git(self, cwd, *args):
        return subprocess.run(["git", *args], cwd=cwd,
                              capture_output=True, text=True, timeout=60)

    def test_changed_scopes_reporting_to_touched_files(self, tmp_path):
        _write(tmp_path, "clean.py", """
            import time
            wall = time.time()
        """)
        _write(tmp_path, "touched.py", "x = 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "add", ".")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "commit", "-qm", "seed")
        # introduce a violation in touched.py only
        (tmp_path / "touched.py").write_text(
            "import random\nx = random.random()\n")
        proc = _run_cli("lint", ".", "--changed", "HEAD", cwd=tmp_path)
        assert proc.returncode == 1
        assert "touched.py" in proc.stdout
        # clean.py also has a violation, but was not changed
        assert "clean.py" not in proc.stdout

    def test_changed_with_no_touched_files_exits_zero(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "add", ".")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "commit", "-qm", "seed")
        proc = _run_cli("lint", ".", "--changed", cwd=tmp_path)
        assert proc.returncode == 0
        assert "nothing to do" in proc.stderr

    def test_changed_outside_git_falls_back_to_full_run(self, tmp_path):
        _write(tmp_path, "bad.py", "import time\nwall = time.time()\n")
        proc = _run_cli("lint", ".", "--changed", cwd=tmp_path)
        assert proc.returncode == 1
        assert "--changed ignored" in proc.stderr
        assert "SIM101" in proc.stdout

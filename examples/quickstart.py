#!/usr/bin/env python3
"""Quickstart: simulate FIO on an NVMe SSD inside a full system.

Builds the Intel 750 preset behind NVMe on the Table II PC platform,
preconditions it to steady state, runs 4 KB random reads at a few queue
depths, and prints bandwidth/latency plus the SSD-internal reports
(power, firmware instructions, cache/FTL statistics) that only a
full-resource model like Amber can produce.
"""

from repro.core import FioJob, FullSystem, presets


def main() -> None:
    print("Amber reproduction quickstart")
    print("=" * 60)

    for depth in (1, 8, 32):
        system = FullSystem(device=presets.intel750(), interface="nvme")
        system.precondition()          # STEADY-STATE: device fully filled
        result = system.run_fio(FioJob(rw="randread", bs=4096,
                                       iodepth=depth, total_ios=1500))
        print(f"\n4K random read, iodepth={depth}")
        print(f"  bandwidth : {result.bandwidth_mbps:8.1f} MB/s")
        print(f"  IOPS      : {result.iops:8.0f}")
        print(f"  latency   : mean {result.latency.mean_us():6.1f} us, "
              f"p99 {result.latency.percentile(99) / 1000:6.1f} us")
        print(f"  host CPU  : {result.host_kernel_utilization * 100:5.1f}% "
              "kernel time")

    power = result.ssd_power
    print("\nSSD internals at iodepth=32 "
          "(what full-resource modeling buys you):")
    print(f"  power     : CPU {power['cpu']:.2f} W, DRAM {power['dram']:.2f} W, "
          f"NAND {power['nand']:.2f} W")
    instr = result.ssd_instructions
    print(f"  firmware  : {instr['total']:,} instructions "
          f"({instr['load'] + instr['store']:,} loads/stores)")
    stats = result.ssd_stats
    print(f"  cache     : hit rate {stats['cache_hit_rate'] * 100:.1f}%, "
          f"{stats['readaheads']} readahead pages")
    print(f"  flash     : {stats['flash_reads']} reads, "
          f"{stats['flash_programs']} programs, "
          f"{stats['flash_erases']} erases")


if __name__ == "__main__":
    main()

"""Amber's public API: full-system assembly + FIO-like workload engine."""

from repro.core.fio import FioJob, FioResult
from repro.core.system import FullSystem
from repro.core import presets

__all__ = ["FullSystem", "FioJob", "FioResult", "presets"]

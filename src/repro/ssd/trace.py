"""Standalone trace-driven mode for the SSD model.

Prior simulators only support block-trace replay; Amber supports it too
(Table IV's standalone column) — useful for apples-to-apples speed
comparisons (Fig 16) and for driving the device with recorded workloads
without a host model.

Trace format: an iterable of ``TraceRecord`` or text lines
``<time_ns> <R|W|T|F> <slba> <nsectors>`` (comments with '#').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Union

from repro.common.iorequest import IOKind
from repro.common.recorders import BandwidthRecorder, LatencyRecorder
from repro.common.units import SEC
from repro.sim import Simulator
from repro.ssd.device import SSD
from repro.ssd.firmware.requests import DeviceCommand

_KIND_CODES = {"R": IOKind.READ, "W": IOKind.WRITE,
               "T": IOKind.TRIM, "F": IOKind.FLUSH}


@dataclass(frozen=True)
class TraceRecord:
    time_ns: int
    kind: IOKind
    slba: int
    nsectors: int


def parse_trace(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Parse text trace lines; raises ValueError with the line number."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"trace line {lineno}: expected 4 fields, "
                             f"got {len(parts)}")
        time_str, code, slba_str, count_str = parts
        if code.upper() not in _KIND_CODES:
            raise ValueError(f"trace line {lineno}: unknown op {code!r}")
        yield TraceRecord(int(time_str), _KIND_CODES[code.upper()],
                          int(slba_str), int(count_str))


@dataclass
class TraceReplayResult:
    completed: int
    bandwidth_mbps: float
    mean_latency_us: float
    elapsed_ns: int
    events_processed: int


class SsdTraceReplayer:
    """Replays a block trace against a standalone SSD.

    ``open_loop=True`` honours each record's timestamp (requests are
    issued at their recorded times, backlogging if the device is slow);
    ``open_loop=False`` replays closed-loop at the given depth, like the
    Fig 3/4 methodology.
    """

    def __init__(self, ssd: SSD) -> None:
        self.ssd = ssd
        self.sim = ssd.sim

    def replay(self, trace: Union[Iterable[str], List[TraceRecord]],
               open_loop: bool = True,
               iodepth: int = 16) -> TraceReplayResult:
        records = list(trace)
        if records and isinstance(records[0], str):
            records = list(parse_trace(records))
        latency = LatencyRecorder()
        bandwidth = BandwidthRecorder()
        state = {"done": 0}

        def issue(record: TraceRecord):
            cmd = DeviceCommand(record.kind, record.slba, record.nsectors)
            start = self.sim.now
            yield self.ssd.submit(cmd)
            state["done"] += 1
            latency.record(self.sim.now - start)
            if record.kind in (IOKind.READ, IOKind.WRITE):
                bandwidth.record(record.nsectors * 512, self.sim.now)

        if open_loop:
            def driver():
                started = self.sim.now
                issued = []
                for record in records:
                    target = started + record.time_ns
                    if target > self.sim.now:
                        yield self.sim.timeout(target - self.sim.now)
                    issued.append(self.sim.process(issue(record)))
                for proc in issued:
                    yield proc

            self.sim.run_process(driver())
        else:
            queue = list(records)

            def worker():
                while queue:
                    record = queue.pop(0)
                    yield from issue(record)

            workers = [self.sim.process(worker())
                       for _ in range(min(iodepth, max(1, len(records))))]

            def waiter():
                for proc in workers:
                    yield proc

            self.sim.run_process(waiter())

        return TraceReplayResult(
            completed=state["done"],
            bandwidth_mbps=bandwidth.mbps(),
            mean_latency_us=latency.mean_us(),
            elapsed_ns=self.sim.now,
            events_processed=self.sim.events_processed,
        )


def synthetic_trace(n: int, kind: str = "randread", bs: int = 4096,
                    region_sectors: int = 1 << 20, interarrival_ns: int = 0,
                    seed: int = 13) -> List[TraceRecord]:
    """Generate a simple synthetic trace (handy for tests and Fig 16)."""
    import random
    rng = random.Random(seed)
    sectors = bs // 512
    out = []
    cursor = 0
    for i in range(n):
        if kind.startswith("rand"):
            slba = rng.randrange(max(1, region_sectors // sectors)) * sectors
        else:
            slba = cursor % (region_sectors - sectors)
            cursor += sectors
        io_kind = IOKind.READ if kind.endswith("read") else IOKind.WRITE
        out.append(TraceRecord(i * interarrival_ns, io_kind, slba, sectors))
    return out

"""Figures 8 & 9: full-system validation against four real devices."""

from repro.experiments import fig08_09_validation as experiment

from benchmarks.conftest import run_experiment


def test_fig08_09_validation(benchmark):
    result = run_experiment(benchmark, experiment)
    # the paper reports 72-96% bandwidth accuracy and 64-96% latency
    # accuracy; require the reproduction to stay in a comparable band
    for device, summary in result["summary"].items():
        assert summary["bandwidth_accuracy"] > 0.60, (
            f"{device}: bandwidth accuracy "
            f"{summary['bandwidth_accuracy']:.2f} below band")
        assert summary["latency_accuracy"] > 0.50, (
            f"{device}: latency accuracy "
            f"{summary['latency_accuracy']:.2f} below band")

    # trend check: bandwidth must rise with depth and flatten (sublinear)
    for device, per_pattern in result["devices"].items():
        curve = per_pattern["seqread"]
        depths = sorted(curve)
        first = curve[depths[0]]["bandwidth_mbps"]
        last = curve[depths[-1]]["bandwidth_mbps"]
        mid = curve[depths[len(depths) // 2]]["bandwidth_mbps"]
        assert last > first, f"{device}: bandwidth does not grow with depth"
        assert last < 1.5 * mid, f"{device}: seqread never saturates"

"""Instruction-level accounting for firmware and kernel execution.

Amber decomposes each firmware function into instruction classes
(arithmetic, branch, load, store, FP, other) and charges per-class CPI on
the executing core.  The same mechanism models host kernel-path costs on
the timing CPU.  Fig 13c's instruction breakdown comes straight out of
these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

CLASSES = ("arith", "branch", "load", "store", "fp", "other")

# Per-class cycles-per-instruction for a simple in-order ARMv8 core.
DEFAULT_CPI: Dict[str, float] = {
    "arith": 1.0,
    "branch": 1.4,   # includes average misprediction cost
    "load": 1.7,     # includes average cache-miss cost
    "store": 1.3,
    "fp": 2.5,
    "other": 1.0,
}


@dataclass(frozen=True)
class InstructionMix:
    """A block of work expressed as per-class instruction counts."""

    arith: int = 0
    branch: int = 0
    load: int = 0
    store: int = 0
    fp: int = 0
    other: int = 0

    @property
    def total(self) -> int:
        return self.arith + self.branch + self.load + self.store + self.fp + self.other

    def cycles(self, cpi: Dict[str, float] = DEFAULT_CPI) -> float:
        return sum(getattr(self, name) * cpi[name] for name in CLASSES)

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(**{
            name: max(0, round(getattr(self, name) * factor)) for name in CLASSES})

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(**{
            name: getattr(self, name) + getattr(other, name) for name in CLASSES})

    @classmethod
    def typical(cls, total: int, fp_fraction: float = 0.0) -> "InstructionMix":
        """A firmware-flavoured mix: ~60% loads+stores (Fig 13c), ~15% branch.

        The load/store dominance reflects firmware that mostly walks queue
        entries, mapping tables and DMA descriptors.
        """
        load = round(total * 0.38)
        store = round(total * 0.22)
        branch = round(total * 0.15)
        fp = round(total * fp_fraction)
        other = round(total * 0.05)
        rest = load + store + branch + fp + other
        if rest > total:
            # heavy FP mixes squeeze the other classes proportionally
            scale = total / rest
            load = round(load * scale)
            store = round(store * scale)
            branch = round(branch * scale)
            fp = round(fp * scale)
            other = round(other * scale)
            rest = load + store + branch + fp + other
            while rest > total:   # rounding residue
                load -= 1
                rest -= 1
        arith = total - rest
        return cls(arith=arith, branch=branch, load=load, store=store,
                   fp=fp, other=other)


@dataclass
class InstructionStats:
    """Accumulated per-class instruction counts (one per core or module)."""

    counts: Dict[str, int] = field(default_factory=lambda: {c: 0 for c in CLASSES})

    def record(self, mix: InstructionMix) -> None:
        counts = self.counts
        counts["arith"] += mix.arith
        counts["branch"] += mix.branch
        counts["load"] += mix.load
        counts["store"] += mix.store
        counts["fp"] += mix.fp
        counts["other"] += mix.other

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merged(self, other: "InstructionStats") -> "InstructionStats":
        out = InstructionStats()
        for name in CLASSES:
            out.counts[name] = self.counts[name] + other.counts[name]
        return out

    def breakdown(self) -> Dict[str, float]:
        """Fractions per class; zeros if nothing executed yet."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in CLASSES}
        return {name: self.counts[name] / total for name in CLASSES}

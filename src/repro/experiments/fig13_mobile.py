"""Figure 13: handheld (UFS on mobile) vs general computing (NVMe on PC).

Three panels:

* (a) user-level bandwidth per enterprise workload — NVMe wins (paper:
  1.81x overall) but the mobile CPU cannot always feed it;
* (b) SSD power breakdown (NAND / DRAM / CPU) with the embedded CPU as
  the most power-hungry component;
* (c) firmware instruction breakdown — loads+stores dominate (~60%) and
  NVMe executes several times more instructions than UFS in the same
  period (doorbell service).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import format_table
from repro.core import presets
from repro.core.system import FullSystem
from repro.host.platform import mobile_platform, pc_platform
from repro.workloads.enterprise import ENTERPRISE_WORKLOADS
from repro.workloads.runner import EnterpriseRunner

WORKLOAD_ORDER = ["24HR", "24HRS", "CFS", "DAP", "MSNFS"]


def _build(interface: str) -> FullSystem:
    if interface == "ufs":
        system = FullSystem(device=presets.ufs_mobile(), interface="ufs",
                            platform=mobile_platform())
    else:
        system = FullSystem(device=presets.intel750(), interface="nvme",
                            platform=pc_platform())
    system.precondition()
    return system


def run(quick: bool = True, n_ios=None, concurrency=None,
        workloads=None) -> Dict:
    """``n_ios``/``concurrency``/``workloads`` shrink the sweep for the
    golden small configs; panels b/c use the last workload listed."""
    n_ios = n_ios or (400 if quick else 1500)
    concurrency = concurrency or (8 if quick else 16)
    workloads = workloads or WORKLOAD_ORDER
    representative = workloads[-1]
    results: Dict = {"workloads": workloads,
                     "bandwidth": {}, "power": {}, "instructions": {}}
    for interface in ("nvme", "ufs"):
        for name in workloads:
            system = _build(interface)
            runner = EnterpriseRunner(system, ENTERPRISE_WORKLOADS[name],
                                      concurrency=concurrency)
            res = runner.run(total_ios=n_ios)
            results["bandwidth"][(interface, name)] = {
                "read_mbps": res.read_bandwidth_mbps,
                "write_mbps": res.write_bandwidth_mbps,
                "total_mbps": res.bandwidth_mbps,
            }
            if name == representative:  # panels b/c: one representative run
                results["power"][interface] = res.ssd_power
                results["instructions"][interface] = {
                    "counts": dict(res.ssd_instructions),
                    "per_second": res.ssd_instructions["total"]
                    / max(1e-9, res.elapsed_ns / 1e9),
                }
    results["summary"] = _summarize(results)
    return results


def _summarize(results: Dict) -> Dict:
    nvme = [results["bandwidth"][("nvme", w)]["total_mbps"]
            for w in results["workloads"]]
    ufs = [results["bandwidth"][("ufs", w)]["total_mbps"]
           for w in results["workloads"]]
    instr = results["instructions"]
    ls_fraction = {}
    for interface, data in instr.items():
        counts = data["counts"]
        total = counts["total"] or 1
        ls_fraction[interface] = (counts["load"] + counts["store"]) / total
    return {
        "nvme_over_ufs": (sum(nvme) / len(nvme)) / max(1e-9,
                                                       sum(ufs) / len(ufs)),
        "instr_rate_ratio": instr["nvme"]["per_second"]
        / max(1e-9, instr["ufs"]["per_second"]),
        "load_store_fraction": ls_fraction,
    }


def render(results: Dict) -> str:
    rows = [[interface, name, round(v["read_mbps"]), round(v["write_mbps"])]
            for (interface, name), v in results["bandwidth"].items()]
    blocks = [format_table(["interface", "workload", "read MB/s",
                            "write MB/s"], rows,
                           "Fig 13a: UFS (mobile) vs NVMe (PC)")]
    power_rows = [[interface, f"{p['nand']:.2f}", f"{p['dram']:.2f}",
                   f"{p['cpu']:.2f}", f"{p['total']:.2f}"]
                  for interface, p in results["power"].items()]
    blocks.append(format_table(["interface", "NAND W", "DRAM W", "CPU W",
                                "total W"], power_rows,
                               "Fig 13b: SSD power breakdown"))
    instr_rows = []
    for interface, data in results["instructions"].items():
        counts = data["counts"]
        total = counts["total"] or 1
        instr_rows.append([
            interface, f"{counts['branch'] / total:.2f}",
            f"{counts['load'] / total:.2f}",
            f"{counts['store'] / total:.2f}",
            f"{counts['arith'] / total:.2f}",
            f"{data['per_second'] / 1e6:.1f}M/s"])
    blocks.append(format_table(
        ["interface", "branch", "load", "store", "arith", "rate"],
        instr_rows, "Fig 13c: firmware instruction breakdown"))
    s = results["summary"]
    blocks.append(
        f"NVMe/UFS bandwidth ratio: {s['nvme_over_ufs']:.2f} (paper: 1.81); "
        f"instruction rate ratio: {s['instr_rate_ratio']:.2f} (paper: 5.45)")
    return "\n\n".join(blocks)

"""Real-device reference curves.

We have no Intel 750 / 850 PRO / Z-SSD / 983 DCT hardware, so the
validation experiments compare against these curves, digitized from the
paper's published figures (Figs 3-4 and 8-9) and public spec sheets.
Values are approximations read off the plots — good to roughly +/-10% —
which is adequate for trend/accuracy comparisons.

All bandwidths are MB/s for 4 KB blocks; latencies are microseconds.
Keys are I/O depths; ``reference_curve`` interpolates between them.
"""

from __future__ import annotations

from typing import Dict, List

_DEPTHS = [1, 2, 4, 8, 16, 24, 32]

# {device: {pattern: {"bandwidth": [...], "latency": [...]}}}
_CURVES: Dict[str, Dict[str, Dict[str, List[float]]]] = {
    "intel750": {
        "seqread":   {"bandwidth": [330, 600, 1000, 1250, 1330, 1350, 1360],
                      "latency":   [12, 13, 15, 22, 42, 62, 82]},
        "randread":  {"bandwidth": [40, 80, 160, 320, 620, 900, 1150],
                      "latency":   [95, 97, 99, 102, 106, 111, 116]},
        "seqwrite":  {"bandwidth": [300, 520, 800, 950, 1000, 1010, 1020],
                      "latency":   [13, 15, 19, 33, 62, 93, 122]},
        "randwrite": {"bandwidth": [250, 420, 650, 820, 880, 900, 910],
                      "latency":   [15, 19, 24, 38, 71, 104, 137]},
    },
    "850pro": {
        "seqread":   {"bandwidth": [180, 320, 470, 525, 540, 545, 545],
                      "latency":   [21, 24, 33, 59, 115, 172, 229]},
        "randread":  {"bandwidth": [35, 70, 135, 250, 390, 470, 510],
                      "latency":   [110, 112, 115, 124, 159, 198, 243]},
        "seqwrite":  {"bandwidth": [160, 280, 410, 480, 505, 512, 515],
                      "latency":   [24, 28, 38, 65, 123, 183, 242]},
        "randwrite": {"bandwidth": [140, 245, 370, 440, 470, 480, 485],
                      "latency":   [27, 32, 42, 71, 132, 195, 257]},
    },
    "zssd": {
        "seqread":   {"bandwidth": [700, 1150, 1600, 1850, 1950, 2000, 2000],
                      "latency":   [5, 7, 10, 17, 32, 47, 62]},
        "randread":  {"bandwidth": [250, 480, 900, 1400, 1800, 1950, 2000],
                      "latency":   [15, 16, 17, 22, 34, 48, 62]},
        "seqwrite":  {"bandwidth": [500, 850, 1150, 1280, 1320, 1330, 1330],
                      "latency":   [8, 9, 13, 24, 47, 70, 94]},
        "randwrite": {"bandwidth": [450, 760, 1050, 1200, 1260, 1270, 1280],
                      "latency":   [9, 10, 15, 26, 50, 74, 98]},
    },
    "983dct": {
        "seqread":   {"bandwidth": [280, 520, 900, 1250, 1450, 1500, 1520],
                      "latency":   [14, 15, 17, 25, 43, 63, 82]},
        "randread":  {"bandwidth": [45, 90, 175, 340, 640, 890, 1100],
                      "latency":   [88, 90, 92, 95, 99, 106, 114]},
        "seqwrite":  {"bandwidth": [260, 470, 750, 920, 980, 990, 1000],
                      "latency":   [15, 17, 21, 35, 64, 95, 125]},
        "randwrite": {"bandwidth": [220, 390, 620, 790, 860, 880, 890],
                      "latency":   [17, 20, 26, 40, 73, 107, 140]},
    },
}

PATTERNS = ("seqread", "randread", "seqwrite", "randwrite")
REAL_DEVICES = tuple(_CURVES)


def reference_curve(device: str, pattern: str,
                    metric: str = "bandwidth") -> Dict[int, float]:
    """Digitized (depth -> value) curve for a device/pattern/metric."""
    try:
        series = _CURVES[device][pattern][metric]
    except KeyError:
        raise ValueError(
            f"no reference data for {device!r}/{pattern!r}/{metric!r}") from None
    return dict(zip(_DEPTHS, series))


def reference_at(device: str, pattern: str, depth: int,
                 metric: str = "bandwidth") -> float:
    """Interpolated reference value at an arbitrary I/O depth."""
    curve = reference_curve(device, pattern, metric)
    if depth in curve:
        return curve[depth]
    depths = sorted(curve)
    if depth <= depths[0]:
        return curve[depths[0]]
    if depth >= depths[-1]:
        return curve[depths[-1]]
    for low, high in zip(depths, depths[1:]):
        if low < depth < high:
            frac = (depth - low) / (high - low)
            return curve[low] * (1 - frac) + curve[high] * frac
    raise AssertionError("unreachable")


def error_rate(real: float, simulated: float) -> float:
    """The paper's error formula: |real - sim| / real."""
    if real <= 0:
        raise ValueError("reference value must be positive")
    return abs(real - simulated) / real


def accuracy(real: float, simulated: float) -> float:
    """Accuracy as the paper reports it: 1 - error, floored at 0."""
    return max(0.0, 1.0 - error_rate(real, simulated))

"""Bounded time-series storage for epoch telemetry samples.

A :class:`TimeSeries` is a memory-bounded sequence of ``(t_ns, value)``
samples.  When the buffer fills it *decimates* deterministically: every
second retained point is dropped and the acceptance stride doubles, so
an arbitrarily long run always keeps at most ``max_points`` samples
spread evenly across its whole duration (old points thin out, they are
never silently truncated from one end).  The same input stream always
produces the same retained points — determinism the epoch tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class TimeSeries:
    """Append-only, bounded, deterministically-decimated series."""

    __slots__ = ("name", "max_points", "_t", "_v", "_stride", "_arrivals",
                 "last_t", "last_value", "total_appends")

    def __init__(self, name: str, max_points: int = 512) -> None:
        if max_points < 4:
            raise ValueError("max_points must be >= 4")
        self.name = name
        self.max_points = max_points
        self._t: List[int] = []
        self._v: List[float] = []
        self._stride = 1
        self._arrivals = 0
        self.last_t = 0
        self.last_value = 0.0
        self.total_appends = 0

    def append(self, t_ns: int, value: float) -> None:
        """Record one sample; O(1) amortized, bounded memory."""
        self.total_appends += 1
        self.last_t = t_ns
        self.last_value = value
        keep = self._arrivals % self._stride == 0
        self._arrivals += 1
        if not keep:
            return
        self._t.append(t_ns)
        self._v.append(value)
        if len(self._t) >= self.max_points:
            # halve resolution: drop every second retained point
            self._t = self._t[::2]
            self._v = self._v[::2]
            self._stride *= 2

    def points(self) -> List[Tuple[int, float]]:
        """Retained ``(t_ns, value)`` samples, oldest first."""
        return list(zip(self._t, self._v))

    def values(self) -> List[float]:
        """Retained values only, oldest first."""
        return list(self._v)

    def minimum(self) -> float:
        """Smallest retained value (0.0 when empty)."""
        return min(self._v) if self._v else 0.0

    def maximum(self) -> float:
        """Largest retained value (0.0 when empty)."""
        return max(self._v) if self._v else 0.0

    def __len__(self) -> int:
        return len(self._t)

    def to_dict(self) -> Dict:
        """JSON-ready encoding for flight dumps and reports."""
        return {
            "name": self.name,
            "stride": self._stride,
            "total_appends": self.total_appends,
            "points": [[t, v] for t, v in zip(self._t, self._v)],
        }

    def __repr__(self) -> str:
        return (f"TimeSeries({self.name!r}, kept={len(self._t)}, "
                f"stride={self._stride})")


def sparkline(values: List[float], width: int = 32) -> str:
    """Render values as a unicode block sparkline (``▁▂▃▄▅▆▇█``).

    Resamples to at most ``width`` characters; a flat series renders as
    a run of the lowest block so constant gauges stay visually quiet.
    """
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    if len(values) > width:
        # pick evenly spaced representatives (deterministic)
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return blocks[0] * len(values)
    return "".join(blocks[min(len(blocks) - 1,
                              int((v - lo) / span * len(blocks)))]
                   for v in values)
